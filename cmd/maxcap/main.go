// Command maxcap is the capacity-model CLI: it predicts how a maxd
// fleet behaves under offered load using the discrete-event simulator
// in internal/capmodel, calibrated from measured execution times.
//
// Three modes:
//
//	maxcap -simulate -rate 50 -duration 30s -backends 2 -pool 4
//	    Predict one scenario's report. Calibration precedence:
//	    -calib snapshot.json (a daemon's /histz export) beats
//	    -grid BENCH_PR5.json (a committed maxbench grid) beats
//	    the analytic fallback (paper cycle counts + PCIe drain).
//
//	maxcap -capacity -slo-p99 250 -backends-sweep 1,2,4 \
//	       -pool-sweep 0,4,16 -sessions-sweep 4,16
//	    Sweep fleet configurations and print the sustainable QPS of
//	    each at the p99 SLO — the operator-facing capacity table.
//
//	maxcap -validate -rate 4 -duration 5s [-addr HOST:PORT]
//	    Close the loop: run the open-loop generator against a real
//	    backend (an in-process lab backend by default, or -addr for an
//	    external daemon with -metrics), calibrate the simulator from
//	    that very run's histograms, replay the identical arrival
//	    schedule, and exit non-zero if prediction misses measurement
//	    by more than the tolerance band.
//
// All three modes share the scenario flags (-rate, -process, -burst,
// -duration, -seed, -max-inflight, -shapes) with maxload, and the
// arrival schedule is seed-deterministic, so a maxload measurement and
// a maxcap prediction of the same flags describe the same arrivals.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"maxelerator/internal/benchgrid"
	"maxelerator/internal/capmodel"
	"maxelerator/internal/fleetlab"
	"maxelerator/internal/load"
	"maxelerator/internal/obs"
)

type cliConfig struct {
	simulate, capacity, validate bool

	// scenario
	rate        float64
	process     string
	burst       int
	duration    time.Duration
	seed        int64
	maxInflight int
	shapes      string

	// fleet
	backends, maxSessions, cpus, pool, refill int
	admissionWait                             time.Duration
	coldStart                                 bool

	// calibration
	calibPath, gridPath string

	// capacity sweep
	sloP99                                  float64
	backendsSweep, poolSweep, sessionsSweep string

	// validate
	addr, metricsURL              string
	tolFactor, tolSlackMs, tolHit float64

	jsonOut bool
}

func main() {
	var c cliConfig
	flag.BoolVar(&c.simulate, "simulate", false, "predict one scenario's report")
	flag.BoolVar(&c.capacity, "capacity", false, "sweep fleet configs for sustainable QPS")
	flag.BoolVar(&c.validate, "validate", false, "measure a real backend, then check the prediction against it")

	flag.Float64Var(&c.rate, "rate", 10, "offered arrival rate, sessions/second")
	flag.StringVar(&c.process, "process", "poisson", "arrival process: poisson, uniform or burst")
	flag.IntVar(&c.burst, "burst", 8, "arrivals per clump under -process burst")
	flag.DurationVar(&c.duration, "duration", 30*time.Second, "arrival window")
	flag.Int64Var(&c.seed, "seed", 1, "schedule seed")
	flag.IntVar(&c.maxInflight, "max-inflight", 64, "client-side concurrent session cap; 0 = unlimited")
	flag.StringVar(&c.shapes, "shapes", "4x4/b=8", "weighted shape mix (maxload syntax)")

	flag.IntVar(&c.backends, "backends", 1, "simulated backend count")
	flag.IntVar(&c.maxSessions, "max-sessions", 8, "per-backend session limit; 0 = unlimited")
	flag.DurationVar(&c.admissionWait, "admission-wait", 2*time.Second, "per-backend queue wait before BUSY")
	flag.IntVar(&c.cpus, "cpus", 0, "per-backend compute parallelism (default: max-inflight, see DESIGN.md §15)")
	flag.IntVar(&c.pool, "pool", 4, "precompute pool depth per shape; 0 = no pool")
	flag.IntVar(&c.refill, "refill-workers", 1, "background refill parallelism")
	flag.BoolVar(&c.coldStart, "cold-start", false, "start pools empty instead of warm")

	flag.StringVar(&c.calibPath, "calib", "", "calibrate from a /histz snapshot JSON file")
	flag.StringVar(&c.gridPath, "grid", "", "calibrate from a committed maxbench grid (BENCH_PR*.json)")

	flag.Float64Var(&c.sloP99, "slo-p99", 250, "capacity sweep: p99 latency SLO in ms")
	flag.StringVar(&c.backendsSweep, "backends-sweep", "1,2,4", "capacity sweep: backend counts")
	flag.StringVar(&c.poolSweep, "pool-sweep", "0,4", "capacity sweep: pool depths")
	flag.StringVar(&c.sessionsSweep, "sessions-sweep", "8", "capacity sweep: max-sessions values")

	flag.StringVar(&c.addr, "addr", "", "validate: external daemon address (default: boot an in-process lab backend)")
	flag.StringVar(&c.metricsURL, "metrics", "", "validate: external daemon observability base URL (required with -addr)")
	flag.Float64Var(&c.tolFactor, "tol-factor", capmodel.DefaultTolerance.LatencyFactor, "validate: latency tolerance factor")
	flag.Float64Var(&c.tolSlackMs, "tol-slack-ms", capmodel.DefaultTolerance.LatencySlackMs, "validate: absolute latency slack, ms")
	flag.Float64Var(&c.tolHit, "tol-hit", capmodel.DefaultTolerance.HitRateAbs, "validate: absolute pool hit-rate tolerance")

	flag.BoolVar(&c.jsonOut, "json", false, "emit JSON on stdout")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "maxcap:", err)
		os.Exit(1)
	}
}

func run(c cliConfig) error {
	mix, err := load.ParseShapes(c.shapes)
	if err != nil {
		return err
	}
	sc := load.Scenario{
		Rate: c.rate, Process: c.process, BurstSize: c.burst,
		DurationSec: c.duration.Seconds(), Seed: c.seed,
		MaxInflight: c.maxInflight, Shapes: mix,
	}
	cpus := c.cpus
	if cpus <= 0 {
		cpus = c.maxInflight
		if cpus <= 0 {
			cpus = 64
		}
	}
	fl := capmodel.Fleet{
		Backends: c.backends, MaxSessions: c.maxSessions,
		AdmissionWaitSec: c.admissionWait.Seconds(),
		CPUs:             cpus, PoolDepth: c.pool, RefillWorkers: c.refill,
		WarmStart: !c.coldStart,
	}
	switch {
	case c.validate:
		return runValidate(c, sc, fl)
	case c.capacity:
		return runCapacity(c, sc, fl, mix)
	case c.simulate:
		return runSimulate(c, sc, fl, mix)
	default:
		return fmt.Errorf("pick a mode: -simulate, -capacity or -validate")
	}
}

// calibrate resolves the calibration with the documented precedence:
// snapshot file, then grid file, then analytic. The reference shape is
// the mix's heaviest entry.
func calibrate(c cliConfig, mix []load.ShapeWeight) (*capmodel.Calibration, error) {
	ref := mix[0]
	for _, sw := range mix {
		if sw.Weight > ref.Weight {
			ref = sw
		}
	}
	if c.calibPath != "" {
		f, err := os.Open(c.calibPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		snap, err := obs.DecodeSnapshot(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.calibPath, err)
		}
		return capmodel.FromSnapshot(snap, ref.Rows, ref.Cols, ref.Width)
	}
	if c.gridPath != "" {
		g, err := benchgrid.Load(c.gridPath)
		if err != nil {
			return nil, err
		}
		return capmodel.FromGrid(g, ref.Rows, ref.Cols, ref.Width)
	}
	return capmodel.Analytic(ref.Rows, ref.Cols, ref.Width)
}

func runSimulate(c cliConfig, sc load.Scenario, fl capmodel.Fleet, mix []load.ShapeWeight) error {
	cal, err := calibrate(c, mix)
	if err != nil {
		return err
	}
	r, err := capmodel.Simulate(sc, fl, cal)
	if err != nil {
		return err
	}
	if c.jsonOut {
		return emit(r)
	}
	fmt.Printf("maxcap: %s calibration, %d backend(s), pool %d, sessions %d\n",
		r.CalibrationSource, fl.Backends, fl.PoolDepth, fl.MaxSessions)
	fmt.Printf("  offered   %6d (%.1f/s)   succeeded %d (%.1f/s)   shed %d   skipped %d\n",
		r.Offered, r.OfferedRate, r.Succeeded, r.AchievedRate, r.Shed, r.Skipped)
	fmt.Printf("  latency   p50 %.1fms  p95 %.1fms  p99 %.1fms  mean %.1fms\n",
		r.Latency.P50Ms, r.Latency.P95Ms, r.Latency.P99Ms, r.Latency.MeanMs)
	if r.Pool != nil {
		fmt.Printf("  pool      %.0f%% hit rate (%d/%d)\n",
			r.Pool.HitRate*100, r.Pool.Hits, r.Pool.Hits+r.Pool.Misses)
	}
	fmt.Printf("  queueing  admission %.1fms  cpu %.1fms  cpu-util %.2f\n",
		r.MeanAdmissionWaitMs, r.MeanCPUWaitMs, r.CPUUtilization)
	return nil
}

func runCapacity(c cliConfig, sc load.Scenario, fl capmodel.Fleet, mix []load.ShapeWeight) error {
	cal, err := calibrate(c, mix)
	if err != nil {
		return err
	}
	backends, err := parseInts(c.backendsSweep)
	if err != nil {
		return err
	}
	pools, err := parseInts(c.poolSweep)
	if err != nil {
		return err
	}
	sessions, err := parseInts(c.sessionsSweep)
	if err != nil {
		return err
	}
	slo := capmodel.SLO{P99Ms: c.sloP99}
	table, err := capmodel.CapacityTable(sc, fl, cal, slo, backends, pools, sessions)
	if err != nil {
		return err
	}
	if c.jsonOut {
		return emit(map[string]any{
			"slo": slo, "calibration": cal.Source, "scenario": sc, "table": table,
		})
	}
	fmt.Printf("maxcap: sustainable QPS at p99 ≤ %.0fms (%s calibration, %s arrivals)\n",
		c.sloP99, cal.Source, sc.Process)
	fmt.Printf("  %-9s %-6s %-13s %s\n", "backends", "pool", "max-sessions", "QPS")
	for _, cell := range table {
		fmt.Printf("  %-9d %-6d %-13d %.1f\n", cell.Backends, cell.PoolDepth, cell.MaxSessions, cell.QPS)
	}
	return nil
}

// validateReport is the -validate JSON artifact: measurement,
// prediction, tolerance, violations, and summary error figures.
type validateReport struct {
	Measured   *load.Report           `json:"measured"`
	Predicted  *capmodel.Result       `json:"predicted"`
	Tolerance  capmodel.ToleranceBand `json:"tolerance"`
	Violations []string               `json:"violations"`
	Err        map[string]float64     `json:"error"`
	Pass       bool                   `json:"pass"`
}

func runValidate(c cliConfig, sc load.Scenario, fl capmodel.Fleet) error {
	ref := sc.Shapes[0]
	lcfg := load.Config{Scenario: sc}
	if c.addr != "" {
		if c.metricsURL == "" {
			return fmt.Errorf("-addr needs -metrics to scrape the calibration snapshot")
		}
		lcfg.Target, lcfg.MetricsURL = c.addr, c.metricsURL
	} else {
		b, err := fleetlab.Start(fleetlab.Config{
			Width: ref.Width, Rows: ref.Rows, Cols: ref.Cols, Seed: sc.Seed,
			MaxSessions: fl.MaxSessions, AdmissionWait: c.admissionWait,
			PoolSize: fl.PoolDepth,
		})
		if err != nil {
			return err
		}
		defer b.Stop()
		if fl.WarmStart {
			if err := b.Prefill(fl.PoolDepth); err != nil {
				return err
			}
		}
		lcfg.Target, lcfg.Registry = b.Addr, b.Registry()
	}

	measured, err := load.Run(lcfg)
	if err != nil {
		return err
	}
	if measured.Succeeded == 0 {
		return fmt.Errorf("live run produced no successful sessions (offered %d, shed %d, failed %d)",
			measured.Offered, measured.Shed, measured.Failed)
	}

	var snap *obs.Snapshot
	if lcfg.Registry != nil {
		snap = lcfg.Registry.Snapshot()
	} else {
		snap, err = load.FetchSnapshot(c.metricsURL)
		if err != nil {
			return err
		}
	}
	cal, err := capmodel.FromSnapshot(snap, ref.Rows, ref.Cols, ref.Width)
	if err != nil {
		return err
	}
	predicted, err := capmodel.Simulate(sc, fl, cal)
	if err != nil {
		return err
	}

	tol := capmodel.ToleranceBand{LatencyFactor: c.tolFactor, LatencySlackMs: c.tolSlackMs, HitRateAbs: c.tolHit}
	viol := capmodel.Validate(measured, predicted, tol)
	rep := validateReport{
		Measured: measured, Predicted: predicted, Tolerance: tol,
		Violations: viol, Err: capmodel.Error(measured, predicted), Pass: len(viol) == 0,
	}
	if c.jsonOut {
		if err := emit(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("maxcap validate: measured p50 %.1fms p99 %.1fms | predicted p50 %.1fms p99 %.1fms\n",
			measured.Latency.P50Ms, measured.Latency.P99Ms,
			predicted.Latency.P50Ms, predicted.Latency.P99Ms)
		if measured.Pool != nil && predicted.Pool != nil {
			fmt.Printf("  pool hit-rate: measured %.2f, predicted %.2f\n",
				measured.Pool.HitRate, predicted.Pool.HitRate)
		}
		fmt.Printf("  error: %+v\n", rep.Err)
		for _, v := range viol {
			fmt.Println("  VIOLATION:", v)
		}
	}
	if len(viol) > 0 {
		return fmt.Errorf("prediction outside tolerance (%d violation(s))", len(viol))
	}
	return nil
}

func emit(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitComma(s) {
		var n int
		if _, err := fmt.Sscanf(p, "%d", &n); err != nil {
			return nil, fmt.Errorf("bad integer list entry %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list")
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s + "," {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		if r != ' ' {
			cur += string(r)
		}
	}
	return out
}
