package protocol

// Tests for the v2 protocol surface: multiplexed sessions, the
// parallel row-garbling pool, version negotiation, and the error
// paths (client disconnect mid-rounds must surface a wrapped wire
// error, never hang).

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/wire"
)

// recordingConn captures every frame sent through it, so tests can
// assert wire-level properties (label freshness) without changing the
// protocol.
type recordingConn struct {
	wire.Conn
	mu   sync.Mutex
	sent [][]byte
}

func (r *recordingConn) SendMsg(m []byte) error {
	cp := append([]byte(nil), m...)
	r.mu.Lock()
	r.sent = append(r.sent, cp)
	r.mu.Unlock()
	return r.Conn.SendMsg(m)
}

func (r *recordingConn) frames() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]byte(nil), r.sent...)
}

func TestMultiplexedSessionAmortizesOTSetup(t *testing.T) {
	o := obs.New(8)
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	rec := &recordingConn{Conn: a}

	A := [][]int64{{1, 2, 3}, {-4, 5, -6}}
	y := []int64{7, -8, 9}
	want := []int64{7 - 16 + 27, -28 - 40 - 54}
	const requests = 8

	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, err := srv.NewSession(rec, SessionConfig{})
		if err != nil {
			srvErr = err
			return
		}
		defer sess.Close()
		for {
			resp, err := sess.Serve(Request{Matrix: A})
			if errors.Is(err, ErrSessionEnded) {
				return
			}
			if err != nil {
				srvErr = err
				return
			}
			for i := range want {
				if resp.Values[i] != want[i] {
					srvErr = fmt.Errorf("server row %d = %d, want %d", i, resp.Values[i], want[i])
					return
				}
			}
		}
	}()

	cs, err := cli.Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < requests; r++ {
		out, err := cs.Do(y)
		if err != nil {
			t.Fatalf("request %d: %v", r, err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("request %d row %d = %d, want %d", r, i, out[i], want[i])
			}
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	if cs.Requests() != requests {
		t.Fatalf("client served %d requests", cs.Requests())
	}

	// Amortization: the whole connection paid exactly one OT setup,
	// while every request got its own rounds and decode phases.
	snaps := o.Traces().Recent(0)
	if len(snaps) != 1 {
		t.Fatalf("%d traces for one connection", len(snaps))
	}
	s := snaps[0]
	if s.Kind != "mux" || !s.Done || s.Err != "" {
		t.Fatalf("trace %+v", s)
	}
	if got := s.SpanCount("ot_setup"); got != 1 {
		t.Fatalf("ot_setup spans = %d, want exactly 1", got)
	}
	if got := s.SpanCount("rounds"); got != requests {
		t.Fatalf("rounds spans = %d, want %d", got, requests)
	}
	if got := s.SpanCount("decode"); got != requests {
		t.Fatalf("decode spans = %d, want %d", got, requests)
	}
	if got := o.Metrics().Histogram("ot_setup_seconds", "", nil).Count(); got != 1 {
		t.Fatalf("ot_setup_seconds count = %d", got)
	}
	if got := o.Metrics().Counter("sessions_total", "", obs.L("kind", "mux")).Value(); got != 1 {
		t.Fatalf("mux sessions_total = %d", got)
	}
	// 8 requests × 6 MACs, all recorded by the per-request simulators.
	if got := o.Metrics().Counter("macs_total", "").Value(); got != 6*requests {
		t.Fatalf("macs_total = %d", got)
	}

	// Fresh labels per request: identical inputs were served eight
	// times; if any two large server frames (garbled material, OT
	// ciphertexts) were byte-identical, labels would have been reused.
	seen := make(map[string]int)
	for i, f := range rec.frames() {
		if len(f) < 200 {
			continue
		}
		if j, dup := seen[string(f)]; dup {
			t.Fatalf("frames %d and %d are byte-identical (%d bytes): labels reused across requests", j, i, len(f))
		}
		seen[string(f)] = i
	}
}

// TestMultiplexedMixedModes drives every datapath over one connection:
// the OT sender/receiver stay in lockstep across per-round, batched,
// correlated and serial requests.
func TestMultiplexedMixedModes(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()

	A := [][]int64{{2, -3}, {4, 5}}
	y := []int64{6, 7}
	wantMat := []int64{12 - 21, 24 + 35}
	x := []int64{-13, 7}
	wantSerial := -13*6 + 7*7

	reqs := []Request{
		{Matrix: A},
		{Matrix: A, OT: OTBatched, GarbleWorkers: 2},
		{Matrix: A, OT: OTCorrelated},
		{Matrix: [][]int64{x}, Mode: ModeSerial},
	}

	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, err := srv.NewSession(a, SessionConfig{})
		if err != nil {
			srvErr = err
			return
		}
		defer sess.Close()
		for _, req := range reqs {
			if _, err := sess.Serve(req); err != nil {
				srvErr = fmt.Errorf("serving %v/%v: %w", req.Mode, req.OT, err)
				return
			}
		}
		if _, err := sess.Serve(Request{Matrix: A}); !errors.Is(err, ErrSessionEnded) {
			srvErr = fmt.Errorf("after client close: %v, want ErrSessionEnded", err)
		}
	}()

	cs, err := cli.Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		out, err := cs.Do(y)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		for r := range wantMat {
			if out[r] != wantMat[r] {
				t.Fatalf("request %d row %d = %d, want %d", i, r, out[r], wantMat[r])
			}
		}
	}
	out, err := cs.Do(y)
	if err != nil {
		t.Fatalf("serial request: %v", err)
	}
	if len(out) != 1 || out[0] != int64(wantSerial) {
		t.Fatalf("serial request = %v, want %d", out, wantSerial)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
}

// TestConcurrentMuxSessions hammers one Server with parallel
// multiplexed connections (run under -race by the tier-1 recipe), each
// carrying several requests garbled by a worker pool.
func TestConcurrentMuxSessions(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 4
	const requests = 3
	errs := make(chan error, 2*clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		A := [][]int64{{int64(c + 1), 2}, {3, int64(-c - 1)}}
		y := []int64{5, -7}
		want := []int64{A[0][0]*5 - 14, 15 + A[1][1]*-7}
		ca, cb := wire.Pipe()
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer ca.Close()
			sess, err := srv.NewSession(ca, SessionConfig{GarbleWorkers: 2})
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			for {
				_, err := sess.Serve(Request{Matrix: A})
				if errors.Is(err, ErrSessionEnded) {
					return
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
		go func(want []int64) {
			defer wg.Done()
			defer cb.Close()
			cli, err := NewClient(rand.Reader)
			if err != nil {
				errs <- err
				return
			}
			cs, err := cli.Dial(cb)
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < requests; r++ {
				out, err := cs.Do(y)
				if err != nil {
					errs <- err
					return
				}
				for i := range want {
					if out[i] != want[i] {
						errs <- fmt.Errorf("row %d = %d, want %d", i, out[i], want[i])
						return
					}
				}
			}
			if err := cs.Close(); err != nil {
				errs <- err
			}
		}(want)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestParallelGarblingMatchesSequential pins the ordering guarantee:
// whatever the pool size, the streamed session computes the same
// matvec (the wire format is reordered into row order).
func TestParallelGarblingMatchesSequential(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 32, Signed: true}
	A := make([][]int64, 16)
	y := []int64{3, -5, 7, -9}
	want := make([]int64, len(A))
	for i := range A {
		A[i] = make([]int64, len(y))
		for j := range A[i] {
			A[i][j] = int64((i*7+j*13)%250 - 125)
			want[i] += A[i][j] * y[j]
		}
	}
	for _, workers := range []int{1, 3, 8} {
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cli, err := NewClient(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		a, b := wire.Pipe()
		var wg sync.WaitGroup
		var resp *Response
		var srvErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, srvErr = srv.Serve(a, Request{Matrix: A, GarbleWorkers: workers})
		}()
		out, err := clientRun(cli, b, y)
		wg.Wait()
		a.Close()
		b.Close()
		if err != nil || srvErr != nil {
			t.Fatalf("workers=%d: client %v server %v", workers, err, srvErr)
		}
		for i := range want {
			if out[i] != want[i] || resp.Values[i] != want[i] {
				t.Fatalf("workers=%d row %d: client %d server %d, want %d", workers, i, out[i], resp.Values[i], want[i])
			}
		}
		if resp.Stats.MACs != uint64(len(A)*len(y)) {
			t.Fatalf("workers=%d: stats %d MACs", workers, resp.Stats.MACs)
		}
	}
}

// TestGarblePoolMetrics checks the pool's instrumentation settles
// clean: every row counted, no queue residue, no busy workers.
func TestGarblePoolMetrics(t *testing.T) {
	o := obs.New(4)
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	A := [][]int64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = srv.Serve(a, Request{Matrix: A, GarbleWorkers: 4})
	}()
	if _, err := clientRun(cli, b, []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	reg := o.Metrics()
	if got := reg.Counter("garble_rows_total", "").Value(); got != uint64(len(A)) {
		t.Fatalf("garble_rows_total = %d", got)
	}
	if got := reg.Gauge("garble_queue_depth", "").Value(); got != 0 {
		t.Fatalf("garble_queue_depth = %d after completion", got)
	}
	if got := reg.Gauge("garble_workers_busy", "").Value(); got != 0 {
		t.Fatalf("garble_workers_busy = %d after completion", got)
	}
	if got := reg.Gauge("garble_workers", "").Value(); got != 4 {
		t.Fatalf("garble_workers = %d", got)
	}
	if got := reg.Histogram("garble_row_seconds", "", nil).Count(); got != uint64(len(A)) {
		t.Fatalf("garble_row_seconds count = %d", got)
	}
}

// disconnectMidRounds opens a request like a real client, then drops
// the connection before evaluating, and returns the server error.
func disconnectMidRounds(t *testing.T, mode OTMode) error {
	t.Helper()
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()

	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(a, Request{Matrix: [][]int64{{1, 2, 3, 4}, {5, 6, 7, 8}}, OT: mode})
		srvDone <- err
	}()

	cs, err := cli.Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	// Open the request by hand: reqOpen out, reqHeader in — then
	// vanish. The server is now mid-rounds, waiting on OT traffic that
	// will never come.
	if err := sendGob(cs.conn, reqOpen{Op: opRequest}); err != nil {
		t.Fatal(err)
	}
	var hdr reqHeader
	if err := recvGob(cs.conn, &hdr); err != nil {
		t.Fatal(err)
	}
	b.Close()

	select {
	case err := <-srvDone:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("server hung after client disconnect mid-rounds")
		return nil
	}
}

func TestClientDisconnectMidRoundsBatched(t *testing.T) {
	err := disconnectMidRounds(t, OTBatched)
	if err == nil {
		t.Fatal("server reported success after client disconnect")
	}
	if !errors.Is(err, wire.ErrClosed) {
		t.Fatalf("error does not wrap the wire failure: %v", err)
	}
}

func TestClientDisconnectMidRoundsCorrelated(t *testing.T) {
	err := disconnectMidRounds(t, OTCorrelated)
	if err == nil {
		t.Fatal("server reported success after client disconnect")
	}
	if !errors.Is(err, wire.ErrClosed) {
		t.Fatalf("error does not wrap the wire failure: %v", err)
	}
}

func TestClientDisconnectMidRoundsPerRound(t *testing.T) {
	err := disconnectMidRounds(t, OTPerRound)
	if err == nil {
		t.Fatal("server reported success after client disconnect")
	}
	if !errors.Is(err, wire.ErrClosed) {
		t.Fatalf("error does not wrap the wire failure: %v", err)
	}
}

// v1Hello mirrors the pre-versioned handshake frame: same field names,
// no ProtoVersion.
type v1Hello struct {
	Width, AccWidth int
	Signed          bool
	Scheme          string
	Rows, Cols      int
	BatchedOT       bool
	CorrelatedOT    bool
}

func TestClientRejectsUnversionedServer(t *testing.T) {
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	// A v1 server opens with a hello that has no ProtoVersion field.
	if err := sendGob(a, v1Hello{Width: 8, AccWidth: 24, Scheme: "half-gates", Rows: 1, Cols: 2}); err != nil {
		t.Fatal(err)
	}
	_, err = clientRun(cli, b, []int64{1, 2})
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("client error = %v, want ErrVersionMismatch", err)
	}
}

func TestServerRejectsUnversionedClient(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(a, Request{Matrix: [][]int64{{1, 2}}})
		srvDone <- err
	}()
	// A v1 client never acks: it reads the hello and immediately opens
	// its base-OT phase. The server must name the version mismatch
	// instead of failing with a bare decode error.
	if _, err := b.RecvMsg(); err != nil {
		t.Fatal(err)
	}
	if err := b.SendMsg([]byte{0x01, 0x02, 0x03, 0x04}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-srvDone:
		if !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("server error = %v, want ErrVersionMismatch", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server hung on unversioned client")
	}
}

func TestServerRejectsFutureVersionAck(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(a, Request{Matrix: [][]int64{{1, 2}}})
		srvDone <- err
	}()
	if _, err := b.RecvMsg(); err != nil {
		t.Fatal(err)
	}
	if err := sendGob(b, helloAck{ProtoVersion: 99}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-srvDone:
		if !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("server error = %v, want ErrVersionMismatch", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server hung on future-version ack")
	}
}

// TestDeprecatedWrappersStillServe pins the migration contract: the
// pre-v2 entry points keep working as thin wrappers over Serve.
func TestDeprecatedWrappersStillServe(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var out int64
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		var resp *Response
		resp, srvErr = srv.Serve(a, Request{Matrix: [][]int64{{2, -3}}})
		if srvErr == nil {
			out = resp.Values[0]
		}
	}()
	got, err := clientRun(cli, b, []int64{4, 5})
	wg.Wait()
	if err != nil || srvErr != nil {
		t.Fatal(err, srvErr)
	}
	if want := int64(2*4 - 3*5); got[0] != want || out != want {
		t.Fatalf("client %d server %d, want %d", got[0], out, want)
	}
}

// TestOTModeValidation pins the single-place enum validation.
func TestOTModeValidation(t *testing.T) {
	for _, m := range []OTMode{OTPerRound, OTBatched, OTCorrelated} {
		if err := m.validate(); err != nil {
			t.Fatalf("%s rejected: %v", m, err)
		}
	}
	if err := OTMode(42).validate(); err == nil {
		t.Fatal("unknown OT mode accepted")
	}
	if OTPerRound.String() != "per-round" || OTBatched.String() != "batched" || OTCorrelated.String() != "correlated" {
		t.Fatal("OTMode names wrong")
	}
}
