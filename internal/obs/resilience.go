package obs

// Fleet-resilience metric canon. Three binaries speak these names —
// the gateway produces them, maxtop renders them, and maxchaos
// asserts invariants over them — so the names, label keys and help
// strings live here once instead of drifting apart in three string
// literals.
const (
	// MetricBreakerState is a per-backend gauge of the circuit
	// breaker's position, encoded via BreakerStateValue.
	MetricBreakerState = "gw_breaker_state"
	// MetricEjections counts temporary backend removals by cause:
	// reason="breaker" (consecutive failures tripped the circuit) or
	// reason="latency" (EWMA outlier ejection).
	MetricEjections = "gw_ejections_total"
	// MetricRetryBudgetTokens is the retry budget's current level in
	// millitokens (tokens × 1000 — the registry's gauges are integers).
	MetricRetryBudgetTokens = "gw_retry_budget_tokens_milli"
	// MetricRetryBudgetExhausted counts sessions shed because the
	// retry budget denied a failover attempt.
	MetricRetryBudgetExhausted = "gw_retry_budget_exhausted_total"
	// MetricHintMisses counts hinted sessions whose shape matched no
	// advertised backend pool, by shape key.
	MetricHintMisses = "gw_hint_misses_total"
)

// Help strings for the resilience families, exported so every
// producer registers identical metadata.
const (
	HelpBreakerState         = "per-backend circuit breaker state (0 closed, 1 open, 2 half-open)"
	HelpEjections            = "temporary backend ejections by reason (breaker | latency)"
	HelpRetryBudgetTokens    = "retry budget level in millitokens"
	HelpRetryBudgetExhausted = "sessions shed because the retry budget denied a failover"
	HelpHintMisses           = "hinted sessions whose shape matched no advertised backend"
)

// Breaker state gauge encoding. The values are part of the scrape
// contract (dashboards alert on state == 1), so they are fixed here
// rather than inherited from any in-process enum.
const (
	BreakerStateClosed   int64 = 0
	BreakerStateOpen     int64 = 1
	BreakerStateHalfOpen int64 = 2
)

// BreakerStateValue maps a breaker state's string form (the
// resilience package's State.String, also used on /fleetz) to its
// gauge encoding. Unknown strings map to open — the conservative
// reading for a dashboard.
func BreakerStateValue(state string) int64 {
	switch state {
	case "closed":
		return BreakerStateClosed
	case "half-open":
		return BreakerStateHalfOpen
	default:
		return BreakerStateOpen
	}
}

// BreakerState returns the per-backend breaker gauge with the
// canonical name and help text.
func (r *Registry) BreakerState(backend string) *Gauge {
	return r.Gauge(MetricBreakerState, HelpBreakerState, L("backend", backend))
}
