package maxsim

// Deferred garbling: the offline half of the GC offline/online split.
// Garbling a MAC chain is input-independent — label generation and the
// fixed-key AES half-gate tables depend only on the circuit shape and
// the randomness stream, never on the garbler's operands (the operands
// only select which of each input wire's two labels is the active
// one). PreGarbleDotProduct therefore garbles a whole dot product
// before the inputs exist, and Bind later patches the garbler-active
// labels for the real vector. The label draw order is identical to
// GarbleDotProduct's, so under the same randomness source a pre-garbled
// run is byte-identical to an inline one — the determinism invariant
// internal/precompute's property tests pin down.

import (
	"fmt"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
)

// PreRun is one pre-garbled dot product awaiting its garbler inputs.
// It retains the garbler-input label pairs of every round; Bind
// consumes them exactly once. A PreRun is not safe for concurrent use —
// single-use admission is the pool layer's job (see
// internal/precompute.Entry).
type PreRun struct {
	run    *DotProductRun
	pairs  [][]label.Pair // per-round garbler-input pairs
	width  int
	signed bool
	bound  bool
}

// Cols returns the vector length the run was garbled for.
func (p *PreRun) Cols() int { return len(p.run.Rounds) }

// PreGarbleDotProduct garbles the m-round sequential MAC with the
// garbler inputs deferred: tables, evaluator pairs and timing are final,
// only the garbler-active label selection waits for Bind. It draws
// labels in exactly the order GarbleDotProduct does, so a simulator
// seeded from the same randomness produces bit-identical material
// either way.
func (s *Simulator) PreGarbleDotProduct(m int) (*PreRun, error) {
	if m <= 0 {
		return nil, fmt.Errorf("maxsim: pre-garble of %d rounds", m)
	}
	run := &DotProductRun{Rounds: make([]*gc.Garbled, 0, m)}
	pairs := make([][]label.Pair, 0, m)
	var state0 []label.Label
	var tweak uint64
	zeros := make([]bool, s.macCkt.NGarbler)
	for round := 0; round < m; round++ {
		gb, err := s.garbler.Garble(s.macCkt, gc.GarbleOptions{
			GarblerInputs: zeros,
			State0:        state0,
			TweakBase:     tweak,
		})
		if err != nil {
			return nil, fmt.Errorf("maxsim: pre-garbling round %d: %w", round, err)
		}
		run.Rounds = append(run.Rounds, gb)
		pairs = append(pairs, gb.GarblerPairs)
		state0 = gb.StateOut0
		tweak = gb.NextTweak
		run.Stats.TablesGarbled += uint64(len(gb.Material.Tables))
		run.Stats.TableBytes += uint64(gb.Material.CiphertextBytes())
	}
	run.OutputPairs = run.Rounds[m-1].OutputPairs
	s.fillStats(&run.Stats, uint64(m))
	return &PreRun{run: run, pairs: pairs, width: s.cfg.Width, signed: s.cfg.Signed}, nil
}

// Bind selects the garbler-active labels for the real vector x and
// returns the now-complete run. A PreRun binds exactly once: the
// garbler-active labels are patched in place, so re-binding would serve
// labels from a garbling the evaluator may already have seen —
// precisely the fresh-labels violation the single-use rule exists to
// prevent.
func (p *PreRun) Bind(x []int64) (*DotProductRun, error) {
	if p.bound {
		return nil, fmt.Errorf("maxsim: pre-garbled run already bound")
	}
	if len(x) != len(p.run.Rounds) {
		return nil, fmt.Errorf("maxsim: binding %d values to a %d-round pre-garbling", len(x), len(p.run.Rounds))
	}
	for round, xi := range x {
		if err := checkRange(xi, p.width, p.signed); err != nil {
			return nil, fmt.Errorf("maxsim: round %d: %w", round, err)
		}
	}
	for round, xi := range x {
		bits := circuit.Int64ToBits(xi, p.width)
		active := p.run.Rounds[round].Material.GarblerActive
		for i, v := range bits {
			active[i] = p.pairs[round][i].Get(v)
		}
	}
	p.bound = true
	return p.run, nil
}
