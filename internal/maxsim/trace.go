package maxsim

import (
	"fmt"

	"maxelerator/internal/label"
	"maxelerator/internal/sched"
)

// Trace is the cycle-by-cycle execution engine for one MAC unit: it
// walks the FSM slot grid clock by clock and models the §5.1 memory
// system — each GC core writes its garbled tables into its own memory
// block through a private input port, while a single shared output
// port drains all blocks toward the PCIe bus. When the drain rate
// falls behind production the blocks fill and the FSM must stall,
// which is the mechanism behind the paper's closing caveat that
// "after certain threshold, communication capability of the server may
// become the bottleneck of the operation".

// TraceConfig parameterises a trace run.
type TraceConfig struct {
	// MACs is the number of MAC rounds streamed through the unit.
	MACs int
	// DrainBytesPerCycle is the output-port bandwidth toward PCIe, in
	// bytes per clock cycle. The paper's platform moves ≈4 B/cycle
	// (800 MiB/s at 200 MHz).
	DrainBytesPerCycle int
	// MemoryBytesPerCore is the capacity of one core's memory block.
	MemoryBytesPerCore int
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.DrainBytesPerCycle == 0 {
		c.DrainBytesPerCycle = 4
	}
	if c.MemoryBytesPerCore == 0 {
		c.MemoryBytesPerCore = 4096
	}
	return c
}

// TraceResult is the outcome of a trace run.
type TraceResult struct {
	// Cycles is the total clock count, including stall cycles.
	Cycles uint64
	// BusyCycles is the schedule's own cycle count (3·stages).
	BusyCycles uint64
	// StallCycles counts cycles the FSM paused because some core's
	// memory block had no room for its next table.
	StallCycles uint64
	// TablesProduced counts garbled tables written to memory.
	TablesProduced uint64
	// BytesProduced is TablesProduced × table size.
	BytesProduced uint64
	// BytesDrained is what left through the output port; equals
	// BytesProduced at completion.
	BytesDrained uint64
	// PeakOccupancyBytes is the maximum total memory in flight.
	PeakOccupancyBytes int
	// PerCoreTables counts tables per GC core over the run.
	PerCoreTables []uint64
}

// StallFraction is StallCycles / Cycles.
func (r TraceResult) StallFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.StallCycles) / float64(r.Cycles)
}

// Trace runs the cycle-level model for this simulator's schedule.
func (s *Simulator) Trace(cfg TraceConfig) (TraceResult, error) {
	cfg = cfg.withDefaults()
	if cfg.MACs <= 0 {
		return TraceResult{}, fmt.Errorf("maxsim: trace needs a positive MAC count")
	}
	if cfg.DrainBytesPerCycle < 0 || cfg.MemoryBytesPerCore <= 0 {
		return TraceResult{}, fmt.Errorf("maxsim: invalid trace memory configuration")
	}
	tableBytes := s.cfg.Params.Scheme.TableSize() * label.Size
	if cfg.MemoryBytesPerCore < tableBytes {
		return TraceResult{}, fmt.Errorf("maxsim: memory block of %d B cannot hold one %d B table",
			cfg.MemoryBytesPerCore, tableBytes)
	}

	schedule := s.schedule
	cores := schedule.Cores
	res := TraceResult{PerCoreTables: make([]uint64, len(cores))}
	res.BusyCycles = schedule.TotalCycles(cfg.MACs)
	totalStages := res.BusyCycles / sched.CyclesPerStage

	occupancy := make([]int, len(cores))
	totalOccupancy := 0
	drainFrom := 0 // round-robin pointer over blocks

	drain := func() {
		budget := cfg.DrainBytesPerCycle
		for scanned := 0; budget > 0 && scanned < len(cores); scanned++ {
			i := (drainFrom + scanned) % len(cores)
			if occupancy[i] == 0 {
				continue
			}
			take := occupancy[i]
			if take > budget {
				take = budget
			}
			occupancy[i] -= take
			totalOccupancy -= take
			budget -= take
			res.BytesDrained += uint64(take)
			if occupancy[i] > 0 {
				// Port saturated mid-block; resume here next cycle.
				drainFrom = i
				return
			}
		}
		drainFrom = (drainFrom + 1) % len(cores)
	}

	for stage := uint64(0); stage < totalStages; stage++ {
		for slot := 0; slot < sched.CyclesPerStage; slot++ {
			// Stall until every producing core has room.
			for {
				blocked := false
				for i, core := range cores {
					if core.Slots[slot].Kind == sched.Idle {
						continue
					}
					if occupancy[i]+tableBytes > cfg.MemoryBytesPerCore {
						blocked = true
						break
					}
				}
				if !blocked {
					break
				}
				res.Cycles++
				res.StallCycles++
				drain()
			}
			// Produce this cycle's tables.
			for i, core := range cores {
				if core.Slots[slot].Kind == sched.Idle {
					continue
				}
				occupancy[i] += tableBytes
				totalOccupancy += tableBytes
				res.TablesProduced++
				res.PerCoreTables[i]++
			}
			if totalOccupancy > res.PeakOccupancyBytes {
				res.PeakOccupancyBytes = totalOccupancy
			}
			res.Cycles++
			drain()
		}
	}
	// Drain the remaining tables.
	for totalOccupancy > 0 {
		if cfg.DrainBytesPerCycle == 0 {
			return TraceResult{}, fmt.Errorf("maxsim: zero drain rate cannot empty memory")
		}
		res.Cycles++
		drain()
	}
	res.BytesProduced = res.TablesProduced * uint64(tableBytes)
	// Publish the memory-system view: stall cycles and peak occupancy
	// are what localise the paper's §5.1 "communication capability …
	// may become the bottleneck" in a live /metrics scrape.
	s.met.traceCycles.Add(res.Cycles)
	s.met.stallCycles.Add(res.StallCycles)
	s.met.drainedBytes.Add(res.BytesDrained)
	s.met.peakMemory.SetMax(int64(res.PeakOccupancyBytes))
	for i, c := range s.met.coreTables {
		c.Add(res.PerCoreTables[i])
	}
	return res, nil
}

// SustainableDrainBytesPerCycle returns the minimum output-port
// bandwidth (bytes/cycle) at which steady-state garbling never stalls:
// the unit produces TablesPerStage tables every 3 cycles.
func (s *Simulator) SustainableDrainBytesPerCycle() int {
	tableBytes := s.cfg.Params.Scheme.TableSize() * label.Size
	perStage := s.schedule.TablesPerStage() * tableBytes
	return (perStage + sched.CyclesPerStage - 1) / sched.CyclesPerStage
}
