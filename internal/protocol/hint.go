package protocol

// Shape hints: the optional routing preface a client may send as its
// very first frame, before the server's hello arrives. A shape-aware
// gateway (cmd/maxgw) peeks the hint to pin the session to the backend
// whose precompute pool is warm for that shape; a server dialed
// directly simply skips the frame during its handshake. The hint is
// advisory and unauthenticated — it carries only what the client was
// going to reveal through its traffic pattern anyway (request
// dimensions and modes, never input values), so routing on it leaks
// nothing beyond the existing honest-but-curious model.

import (
	"fmt"

	"maxelerator/internal/wire"
)

// ShapeHint names the request shape a session intends to issue, in the
// same vocabulary as the precompute pool keys (rows×cols, operand
// width, signedness, datapath mode, OT mode). Zero fields mean
// "unknown": a client that cannot know the server's row count sends
// Rows 0 and still routes consistently, because routing hashes the
// rendered Key, unknowns included.
type ShapeHint struct {
	// Rows and Cols are the expected request matrix dimensions (the
	// client typically knows Cols — its vector length — and may not
	// know Rows).
	Rows, Cols int
	// Width is the operand bit-width; Signed the datapath signedness.
	Width  int
	Signed bool
	// Mode is the wire name of the datapath ("matvec" or "serial").
	Mode string
	// OT is the label-transfer mode name ("per-round", "batched" or
	// "correlated").
	OT string
}

// Key renders the hint as the stable routing key a gateway hashes:
// same format as the precompute shape labels, so a pool metric and a
// routing decision read identically in dashboards.
func (h ShapeHint) Key() string {
	sign := "u"
	if h.Signed {
		sign = "s"
	}
	return fmt.Sprintf("%dx%d/b%d%s/%s/%s", h.Rows, h.Cols, h.Width, sign, h.Mode, h.OT)
}

// msgShapeHint is the wire form of the preface. Hint is always true on
// the wire; it is the field that distinguishes a hint from the other
// first-frame shapes when probed (gob matches fields by name, so a
// helloAck or busy frame decoded into msgShapeHint leaves Hint false —
// the same trick msgBusy uses).
type msgShapeHint struct {
	Hint       bool
	Rows, Cols int
	Width      int
	Signed     bool
	Mode       string
	OT         string
}

// SendShapeHint writes the hint preface on conn. Clients call it (via
// Client.WithShapeHint) before reading the server hello; a gateway
// consumes the frame, a directly-dialed server skips it.
func SendShapeHint(conn wire.Conn, h ShapeHint) error {
	return sendGob(conn, msgShapeHint{
		Hint: true,
		Rows: h.Rows, Cols: h.Cols, Width: h.Width, Signed: h.Signed,
		Mode: h.Mode, OT: h.OT,
	})
}

// PeekShapeHint probes an already-received frame as a shape-hint
// preface. It reports false for every other frame shape (helloAck,
// busy, hello), so a router can peek its client's first frame without
// consuming anything it cannot classify.
func PeekShapeHint(frame []byte) (ShapeHint, bool) {
	var m msgShapeHint
	if err := decodeGob(frame, &m); err != nil || !m.Hint {
		return ShapeHint{}, false
	}
	return ShapeHint{
		Rows: m.Rows, Cols: m.Cols, Width: m.Width, Signed: m.Signed,
		Mode: m.Mode, OT: m.OT,
	}, true
}

// PeekBusy probes an already-received frame as a load-shedding BUSY
// frame, the way Client.Dial does before version negotiation. A
// gateway uses it on the first backend frame to trigger failover to
// the next ring replica instead of surfacing the rejection.
func PeekBusy(frame []byte) (*BusyError, bool) {
	var busy msgBusy
	if err := decodeGob(frame, &busy); err != nil || !busy.Busy {
		return nil, false
	}
	return &BusyError{RetryAfter: busyRetryAfter(busy)}, true
}
