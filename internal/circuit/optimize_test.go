package circuit

import (
	mrand "math/rand"
	"testing"
)

func assertSameFunction(t *testing.T, a, b *Circuit, trials int, seed int64) {
	t.Helper()
	if a.NGarbler != b.NGarbler || a.NEvaluator != b.NEvaluator ||
		a.NState != b.NState || len(a.Outputs) != len(b.Outputs) {
		t.Fatal("optimisation changed the circuit interface")
	}
	rng := mrand.New(mrand.NewSource(seed))
	bits := func(n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = rng.Intn(2) == 1
		}
		return out
	}
	for i := 0; i < trials; i++ {
		g := bits(a.NGarbler)
		e := bits(a.NEvaluator)
		st := bits(a.NState)
		oa, sa, err := a.EvalRound(g, e, st)
		if err != nil {
			t.Fatal(err)
		}
		ob, sb, err := b.EvalRound(g, e, st)
		if err != nil {
			t.Fatal(err)
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("trial %d output %d differs", i, j)
			}
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("trial %d state out %d differs", i, j)
			}
		}
	}
}

func TestOptimizeRemovesDeadGates(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(4)
	y := b.EvaluatorInputs(4)
	used := b.AND(x[0], y[0])
	b.AND(x[1], y[1]) // dead
	b.XOR(x[2], y[2]) // dead
	b.Outputs(used)
	c := b.MustBuild()
	opt := Optimize(c)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := opt.Stats().ANDs; got != 1 {
		t.Fatalf("optimised circuit has %d ANDs, want 1", got)
	}
	assertSameFunction(t, c, opt, 20, 1)
}

func TestOptimizeMergesDuplicates(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(2)
	y := b.EvaluatorInputs(2)
	a1 := b.AND(x[0], y[0])
	a2 := b.AND(y[0], x[0]) // commutative duplicate
	x1 := b.XOR(x[1], y[1])
	x2 := b.XOR(y[1], x[1]) // duplicate
	b.Outputs(b.AND(a1, x1), b.AND(a2, x2))
	c := b.MustBuild()
	opt := Optimize(c)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	// a1≡a2 and x1≡x2, so their consumers merge too: 2 ANDs total.
	if got := opt.Stats().ANDs; got != 2 {
		t.Fatalf("optimised circuit has %d ANDs, want 2", got)
	}
	assertSameFunction(t, c, opt, 20, 2)
}

func TestOptimizeFoldsAlgebra(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(2)
	b.EvaluatorInputs(0)
	selfXor := b.gate(XOR, x[0], x[0]) // bypasses builder folding
	selfAnd := b.gate(AND, x[1], x[1])
	b.Outputs(b.XOR(selfXor, selfAnd)) // = 0 ⊕ x[1] = x[1]
	c := b.MustBuild()
	opt := Optimize(c)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := opt.Stats(); got.ANDs != 0 || got.XORs != 0 {
		t.Fatalf("folding left %d ANDs %d XORs", got.ANDs, got.XORs)
	}
	assertSameFunction(t, c, opt, 8, 3)
}

func TestOptimizePreservesMACSemantics(t *testing.T) {
	c := MustMAC(MACConfig{Width: 8, AccWidth: 16, Signed: true})
	opt := Optimize(c)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.Stats().ANDs > c.Stats().ANDs {
		t.Fatalf("optimisation increased ANDs: %d → %d", c.Stats().ANDs, opt.Stats().ANDs)
	}
	assertSameFunction(t, c, opt, 40, 4)
}

func TestOptimizeReducesRedundantGenerators(t *testing.T) {
	// Two calls to the same generator on the same operands duplicate
	// the whole block; the optimiser must collapse them.
	b := NewBuilder()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	s1 := b.Add(x, y)
	s2 := b.Add(x, y)
	b.OutputWord(s1)
	b.OutputWord(s2)
	c := b.MustBuild()
	opt := Optimize(c)
	// The duplicate block halves, and the dead final-carry AND of the
	// adder goes too: 16 → 7.
	if got := opt.Stats().ANDs; got != 7 {
		t.Fatalf("duplicate adders: %d ANDs, want 7", got)
	}
	assertSameFunction(t, c, opt, 20, 5)
}

func TestOptimizeIdempotent(t *testing.T) {
	c := MustMAC(MACConfig{Width: 8, AccWidth: 16})
	once := Optimize(c)
	twice := Optimize(once)
	if len(twice.Gates) != len(once.Gates) {
		t.Fatalf("second pass changed gate count %d → %d", len(once.Gates), len(twice.Gates))
	}
	assertSameFunction(t, once, twice, 20, 6)
}

func TestOptimizeDivider(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	q, r := b.DivMod(x, y)
	b.OutputWord(q)
	b.OutputWord(r)
	c := b.MustBuild()
	opt := Optimize(c)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	assertSameFunction(t, c, opt, 30, 7)
}

func TestOptimizedCircuitGarbles(t *testing.T) {
	// The optimised netlist must still garble and evaluate — the whole
	// point of shrinking it.
	b := NewBuilder()
	x := b.GarblerInputs(6)
	y := b.EvaluatorInputs(6)
	p1 := b.MulTreeUnsigned(x, y)
	p2 := b.MulTreeUnsigned(x, y) // duplicate work
	b.OutputWord(b.Add(p1, p2))
	c := Optimize(b.MustBuild())
	out, err := c.Eval(Uint64ToBits(7, 6), Uint64ToBits(9, 6))
	if err != nil {
		t.Fatal(err)
	}
	if got := BitsToUint64(out); got != 2*7*9 {
		t.Fatalf("optimised duplicate-mult circuit = %d, want %d", got, 2*7*9)
	}
}
