package gc

import (
	"fmt"
	"io"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gchash"
	"maxelerator/internal/label"
)

// Params bundles the garbling configuration shared by both parties.
type Params struct {
	// Hash is the garbling hash; both parties must agree on it.
	Hash gchash.Hasher
	// Scheme is the AND-garbling scheme; both parties must agree on it.
	Scheme Scheme
}

// DefaultParams returns the paper's configuration: half gates over the
// fixed-key AES hash.
func DefaultParams() Params {
	return Params{Hash: gchash.MustAES(), Scheme: HalfGates{}}
}

func (p Params) validate() error {
	if p.Hash == nil {
		return fmt.Errorf("gc: nil hash")
	}
	if p.Scheme == nil {
		return fmt.Errorf("gc: nil scheme")
	}
	return nil
}

// Material is everything the evaluator receives for one garbled
// execution, besides its own OT-transferred input labels: garbled
// tables, the garbler's active input labels, the constant-wire labels
// and the output decoding permutation.
type Material struct {
	// Tables holds one garbled table per AND gate, in gate order.
	Tables [][]label.Label
	// GarblerActive are the active labels of the garbler's input wires.
	GarblerActive []label.Label
	// ConstActive are the active labels of the constant-0 and
	// constant-1 wires.
	ConstActive [2]label.Label
	// OutputPerm holds the permute (select) bit of each output wire's
	// FALSE label; the evaluator decodes output v = lsb(active) ⊕ perm.
	OutputPerm []bool
	// StateInActive carries, on round 0 of a sequential execution, the
	// active labels of the state wires (their FALSE labels, since state
	// starts at logical 0). Nil on later rounds, where the evaluator
	// reuses the state labels produced by its previous round.
	StateInActive []label.Label
	// TweakBase is the first hash tweak used by this execution; the
	// evaluator must use the same sequence.
	TweakBase uint64
}

// CiphertextBytes is the total garbled-table volume in bytes — the
// traffic the accelerator must push over PCIe and the host over the
// network.
func (m *Material) CiphertextBytes() int {
	n := 0
	for _, t := range m.Tables {
		n += len(t) * label.Size
	}
	return n
}

// Garbled is the garbler-side result of garbling one circuit (or one
// round of a sequential circuit). It retains the garbler's secrets:
// the FALSE label of every wire.
type Garbled struct {
	// Material is the public part, shipped to the evaluator.
	Material Material
	// EvalPairs holds the label pair of each evaluator input wire, the
	// sender-side input to oblivious transfer.
	EvalPairs []label.Pair
	// GarblerPairs holds the label pair of each garbler input wire.
	// Material.GarblerActive is the per-value selection from these
	// pairs; retaining them lets a precomputation layer garble before
	// the garbler's inputs are known and select the active labels later
	// (the offline/online split — tables and labels are input-
	// independent, only the selection is not).
	GarblerPairs []label.Pair
	// OutputPairs holds the label pair of each output wire; the garbler
	// can decode or verify outputs with them.
	OutputPairs []label.Pair
	// StateOut0 holds the FALSE labels of the state-output wires; they
	// seed the state wires of the next sequential round.
	StateOut0 []label.Label
	// NextTweak is the tweak the next round must start from.
	NextTweak uint64
}

// Garbler garbles circuits under a fixed global Δ drawn at
// construction. A Garbler is not safe for concurrent use.
type Garbler struct {
	params Params
	delta  label.Delta
	rand   io.Reader
}

// NewGarbler creates a garbler with a fresh free-XOR offset drawn from
// rnd.
func NewGarbler(params Params, rnd io.Reader) (*Garbler, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if rnd == nil {
		return nil, fmt.Errorf("gc: nil random source")
	}
	d, err := label.NewDelta(rnd)
	if err != nil {
		return nil, err
	}
	return &Garbler{params: params, delta: d, rand: rnd}, nil
}

// Delta exposes the global offset for components (like the OT sender
// performing correlated transfers) that need it. It must never be
// revealed to the evaluator.
func (g *Garbler) Delta() label.Delta { return g.delta }

// GarbleOptions refines a Garble call.
type GarbleOptions struct {
	// GarblerInputs are the garbler's plaintext input bits; required
	// length circuit.NGarbler.
	GarblerInputs []bool
	// State0 supplies the FALSE labels of the state wires for a
	// sequential round; nil means round 0, where the garbler fixes the
	// state to logical 0 by construction (the evaluator's round-0
	// active state labels equal these FALSE labels).
	State0 []label.Label
	// TweakBase is the first hash tweak for this execution. Sequential
	// rounds must use strictly increasing, non-overlapping tweak
	// ranges; pass the previous round's NextTweak.
	TweakBase uint64
	// EvalWire0 optionally supplies the FALSE labels of the evaluator
	// input wires instead of drawing them, as when correlated OT picks
	// the labels (the TRUE labels are EvalWire0 ⊕ Δ as always). Length
	// must equal circuit.NEvaluator when non-nil.
	EvalWire0 []label.Label
}

// Garble garbles the circuit and returns both the evaluator-bound
// material and the garbler-side secrets.
func (g *Garbler) Garble(c *circuit.Circuit, opts GarbleOptions) (*Garbled, error) {
	if len(opts.GarblerInputs) != c.NGarbler {
		return nil, fmt.Errorf("gc: got %d garbler input bits, want %d", len(opts.GarblerInputs), c.NGarbler)
	}
	if opts.State0 != nil && len(opts.State0) != c.NState {
		return nil, fmt.Errorf("gc: got %d state labels, want %d", len(opts.State0), c.NState)
	}
	if opts.EvalWire0 != nil && len(opts.EvalWire0) != c.NEvaluator {
		return nil, fmt.Errorf("gc: got %d evaluator labels, want %d", len(opts.EvalWire0), c.NEvaluator)
	}

	wire0 := make([]label.Label, c.NWires)
	inputSpan := circuit.FirstInput + c.NGarbler + c.NEvaluator + c.NState
	for i := 0; i < inputSpan; i++ {
		l, err := label.Random(g.rand)
		if err != nil {
			return nil, err
		}
		wire0[i] = l
	}
	stateBase := circuit.FirstInput + c.NGarbler + c.NEvaluator
	if opts.State0 != nil {
		copy(wire0[stateBase:], opts.State0)
	}
	if opts.EvalWire0 != nil {
		copy(wire0[circuit.FirstInput+c.NGarbler:], opts.EvalWire0)
	}

	tables := make([][]label.Label, 0, len(c.Gates))
	tweak := opts.TweakBase
	for _, gate := range c.Gates {
		switch gate.Op {
		case circuit.XOR:
			wire0[gate.Out] = wire0[gate.A].Xor(wire0[gate.B])
		case circuit.AND:
			out0, table := g.params.Scheme.GarbleAND(g.params.Hash, g.delta, wire0[gate.A], wire0[gate.B], tweak)
			wire0[gate.Out] = out0
			tables = append(tables, table)
			tweak += g.params.Scheme.TweaksPerGate()
		default:
			return nil, fmt.Errorf("gc: unsupported op %v", gate.Op)
		}
	}

	res := &Garbled{
		Material: Material{
			Tables:     tables,
			OutputPerm: make([]bool, len(c.Outputs)),
			TweakBase:  opts.TweakBase,
		},
		EvalPairs:   make([]label.Pair, c.NEvaluator),
		OutputPairs: make([]label.Pair, len(c.Outputs)),
		StateOut0:   make([]label.Label, c.NState),
		NextTweak:   tweak,
	}
	// Constant wires: the active label of const-0 is its FALSE label,
	// of const-1 its TRUE label.
	res.Material.ConstActive[0] = wire0[circuit.Const0]
	res.Material.ConstActive[1] = g.delta.Flip(wire0[circuit.Const1])
	// Garbler inputs: active labels for the garbler's values, selected
	// from the retained pairs.
	res.Material.GarblerActive = make([]label.Label, c.NGarbler)
	res.GarblerPairs = make([]label.Pair, c.NGarbler)
	for i, v := range opts.GarblerInputs {
		res.GarblerPairs[i] = label.NewPair(wire0[c.GarblerInputWire(i)], g.delta)
		res.Material.GarblerActive[i] = res.GarblerPairs[i].Get(v)
	}
	for i := range res.EvalPairs {
		res.EvalPairs[i] = label.NewPair(wire0[c.EvaluatorInputWire(i)], g.delta)
	}
	for i, ow := range c.Outputs {
		res.Material.OutputPerm[i] = wire0[ow].LSB()
		res.OutputPairs[i] = label.NewPair(wire0[ow], g.delta)
	}
	for i, sw := range c.StateOuts {
		res.StateOut0[i] = wire0[sw]
	}
	if opts.State0 == nil && c.NState > 0 {
		// Round 0: state is logical 0, so the FALSE labels are active
		// and must travel to the evaluator.
		res.Material.StateInActive = append([]label.Label(nil), wire0[stateBase:stateBase+c.NState]...)
	}
	return res, nil
}

// DecodeWithPairs decodes active output labels on the garbler side by
// matching them against the known pairs. It errors on labels that
// belong to neither side of a pair, which indicates corruption.
func DecodeWithPairs(pairs []label.Pair, active []label.Label) ([]bool, error) {
	if len(pairs) != len(active) {
		return nil, fmt.Errorf("gc: got %d active labels, want %d", len(active), len(pairs))
	}
	out := make([]bool, len(active))
	for i, a := range active {
		switch a {
		case pairs[i].False:
			out[i] = false
		case pairs[i].True:
			out[i] = true
		default:
			return nil, fmt.Errorf("gc: output label %d matches neither pair label", i)
		}
	}
	return out, nil
}
