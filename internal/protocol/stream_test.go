package protocol

// Wire-transcript property tests for the streaming serve pipeline
// (PR 8): the pipelined hot path must emit exactly the bytes the fully
// buffered path did, whatever the pipeline depth, worker count, or
// serving path (inline, precompute cold miss, precompute hit). Where
// worker pools share one entropy stream — so label values legitimately
// depend on draw interleaving — the test pins the frame structure and
// results instead of raw bytes.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"maxelerator/internal/label"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/precompute"
	"maxelerator/internal/wire"
)

// poolState selects the precompute configuration of one transcript run.
type poolState int

const (
	poolNone poolState = iota // no engine attached
	poolCold                  // engine attached, never filled: every Take misses
	poolHot                   // engine prefilled deterministically: every Take hits
)

// streamTranscript runs one deterministic request (server DRBG {11},
// client DRBG {22}, engine seeds {33}) at the given knobs and returns
// the server's sent frames and the client's outputs.
func streamTranscript(t *testing.T, mode OTMode, workers, depth int, pool poolState) ([][]byte, []int64) {
	t.Helper()
	oldDepth := pipeDepth
	pipeDepth = depth
	defer func() { pipeDepth = oldDepth }()

	A := [][]int64{{1, -2, 3}, {4, 5, -6}, {-7, 8, 9}}
	y := []int64{7, -8, 9}

	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	drbg, err := label.NewDRBG([16]byte{11})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rand = drbg
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(obs.New(2))
	if pool != poolNone {
		seeds, err := label.NewDRBG([16]byte{33})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := precompute.New(precompute.Config{
			Sim:        maxsim.Config{Width: 8, AccWidth: 24, Signed: true},
			SeedSource: seeds,
			PoolSize:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Stop)
		srv.WithPrecompute(eng)
		if pool == poolHot {
			shape := precompute.Shape{Rows: 3, Cols: 3, Width: 8, Signed: true, Mode: "matvec", OT: mode.String()}
			if err := eng.Prefill(shape, 1); err != nil {
				t.Fatal(err)
			}
		}
	}

	ca, cb := wire.Pipe()
	defer ca.Close()
	defer cb.Close()
	rec := &recordingConn{Conn: ca}
	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = srv.Serve(rec, Request{Matrix: A, OT: mode, GarbleWorkers: workers})
	}()
	cdrbg, err := label.NewDRBG([16]byte{22})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(cdrbg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := clientRun(cli, cb, y)
	if err != nil {
		t.Fatalf("client (mode=%s workers=%d depth=%d pool=%d): %v", mode, workers, depth, pool, err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server (mode=%s workers=%d depth=%d pool=%d): %v", mode, workers, depth, pool, srvErr)
	}
	return rec.frames(), out
}

func wantResults(t *testing.T, out []int64) {
	t.Helper()
	want := []int64{1*7 + -2*-8 + 3*9, 4*7 + 5*-8 + -6*9, -7*7 + 8*-8 + 9*9}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("results %v, want %v", out, want)
		}
	}
}

func sameFrames(t *testing.T, label string, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: frame count %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: frame %d differs (%d vs %d bytes)", label, i, len(got[i]), len(want[i]))
		}
	}
}

// TestStreamTranscriptInvariantUnderDepth: with deterministic
// randomness and serial garbling, the transcript is bit-identical at
// every pipeline depth, on both the engine-less and the cold-miss
// fallback path, in per-round and batched OT modes. This is the PR 5
// bit-identity guarantee carried over to the pipelined hot path.
func TestStreamTranscriptInvariantUnderDepth(t *testing.T) {
	for _, mode := range []OTMode{OTPerRound, OTBatched} {
		t.Run(mode.String(), func(t *testing.T) {
			base, out := streamTranscript(t, mode, 0, 2, poolNone)
			wantResults(t, out)
			// depth 1 forces maximal producer/consumer lockstep, depth 8
			// exceeds the row count entirely; the cold pool rides along on
			// the depth extremes so the miss fallback is covered too.
			for _, run := range []struct {
				depth int
				pool  poolState
			}{{1, poolNone}, {8, poolNone}, {1, poolCold}, {8, poolCold}} {
				got, out := streamTranscript(t, mode, 0, run.depth, run.pool)
				wantResults(t, out)
				sameFrames(t, fmt.Sprintf("depth=%d pool=%d", run.depth, run.pool), got, base)
			}
		})
	}
}

// TestStreamTranscriptInvariantOnHits: a precompute hit streams the
// pooled material untouched, so its transcript is bit-identical at any
// worker count and depth — the knobs only drive the garbling path the
// hit skips.
func TestStreamTranscriptInvariantOnHits(t *testing.T) {
	for _, mode := range []OTMode{OTPerRound, OTBatched} {
		t.Run(mode.String(), func(t *testing.T) {
			base, out := streamTranscript(t, mode, 0, 2, poolHot)
			wantResults(t, out)
			for _, run := range []struct{ workers, depth int }{{2, 1}, {5, 4}} {
				got, out := streamTranscript(t, mode, run.workers, run.depth, poolHot)
				wantResults(t, out)
				sameFrames(t, fmt.Sprintf("workers=%d depth=%d", run.workers, run.depth), got, base)
			}
		})
	}
}

// TestStreamTranscriptStructureUnderWorkers: pooled garbling draws
// labels from one shared entropy stream, so raw bytes legitimately vary
// with scheduling — but the frame structure (count and per-frame
// length) and the results must match the serial path exactly at every
// worker count, depth, and fallback path. A reordering or framing bug
// in the pipeline shows up here.
func TestStreamTranscriptStructureUnderWorkers(t *testing.T) {
	for _, mode := range []OTMode{OTPerRound, OTBatched} {
		t.Run(mode.String(), func(t *testing.T) {
			base, out := streamTranscript(t, mode, 0, 2, poolNone)
			wantResults(t, out)
			for _, run := range []struct {
				workers, depth int
				pool           poolState
			}{{2, 1, poolNone}, {3, 4, poolNone}, {2, 4, poolCold}} {
				got, out := streamTranscript(t, mode, run.workers, run.depth, run.pool)
				wantResults(t, out)
				label := fmt.Sprintf("workers=%d depth=%d pool=%d", run.workers, run.depth, run.pool)
				if len(got) != len(base) {
					t.Fatalf("%s: frame count %d, want %d", label, len(got), len(base))
				}
				for i := range base {
					if len(got[i]) != len(base[i]) {
						t.Fatalf("%s: frame %d is %d bytes, want %d", label, i, len(got[i]), len(base[i]))
					}
				}
			}
		})
	}
}
