// Command maxtop is a live terminal view over a running maxd: it polls
// the daemon's /metrics endpoint (see maxd -metrics-addr) and renders
// session, garbling-throughput, memory-system, latency and Go-runtime
// figures (goroutines, heap occupancy, GC pause p99), plus a per-core
// table/idle breakdown of the MAC unit.
//
// Usage:
//
//	maxtop -addr 127.0.0.1:7701              # refresh every 2s
//	maxtop -addr 127.0.0.1:7701 -once        # single snapshot
//	maxtop -addr 127.0.0.1:7701 -interval 1s -count 10
//
// Rates (MAC/s, wire bytes/s) are derived from the deltas between two
// consecutive scrapes, so the first frame of a watch shows totals only.
//
// Pointed at a maxgw metrics address instead of a maxd one, maxtop
// renders the fleet panel: ring membership, session routing, failover
// and retry-budget counts from the gw_* metric families, plus a
// per-backend table (health, breaker state, in-flight sessions,
// handshake latency, advertised shapes) scraped from the gateway's
// /fleetz endpoint and closed by an aggregated fleet row — summed
// counters with a load-weighted latency figure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"maxelerator/internal/gateway"
	"maxelerator/internal/obs"
	"maxelerator/internal/report"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7701", "maxd metrics address (host:port)")
	interval := flag.Duration("interval", 2*time.Second, "poll period")
	count := flag.Int("count", 0, "number of frames to render (0 = until interrupted)")
	once := flag.Bool("once", false, "render a single snapshot and exit")
	flag.Parse()

	n := *count
	if *once {
		n = 1
	}
	if err := watch(os.Stdout, "http://"+*addr+"/metrics", *interval, n, !*once && n != 1); err != nil {
		fmt.Fprintln(os.Stderr, "maxtop:", err)
		os.Exit(1)
	}
}

// sample is one exposition line: a metric name, its label set and the
// parsed value.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// label returns a label value or "".
func (s sample) label(key string) string { return s.labels[key] }

// snapshot is one parsed /metrics scrape.
type snapshot struct {
	samples []sample
	when    time.Time
}

// get returns the value of the sample matching name and every given
// key=value pair (pairs are alternating key, value strings).
func (s *snapshot) get(name string, pairs ...string) (float64, bool) {
next:
	for _, sm := range s.samples {
		if sm.name != name {
			continue
		}
		for i := 0; i+1 < len(pairs); i += 2 {
			if sm.labels[pairs[i]] != pairs[i+1] {
				continue next
			}
		}
		return sm.value, true
	}
	return 0, false
}

// val is get with a zero default.
func (s *snapshot) val(name string, pairs ...string) float64 {
	v, _ := s.get(name, pairs...)
	return v
}

// sumBy sums all samples of a family grouped by one label, returned in
// label-sorted order (numeric labels sort numerically).
func (s *snapshot) sumBy(name, key string) []struct {
	Label string
	Value float64
} {
	acc := map[string]float64{}
	for _, sm := range s.samples {
		if sm.name == name {
			acc[sm.label(key)] += sm.value
		}
	}
	out := make([]struct {
		Label string
		Value float64
	}, 0, len(acc))
	for l, v := range acc {
		out = append(out, struct {
			Label string
			Value float64
		}{l, v})
	}
	sort.Slice(out, func(i, j int) bool {
		a, aerr := strconv.Atoi(out[i].Label)
		b, berr := strconv.Atoi(out[j].Label)
		if aerr == nil && berr == nil {
			return a < b
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// parseMetrics reads a Prometheus text-format exposition. Unparsable
// lines are skipped rather than fatal: maxtop must keep rendering even
// if the daemon grows metrics this binary does not know.
func parseMetrics(r io.Reader) (*snapshot, error) {
	snap := &snapshot{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		key := line[:sp]
		sm := sample{labels: map[string]string{}, value: v}
		if open := strings.IndexByte(key, '{'); open >= 0 && strings.HasSuffix(key, "}") {
			sm.name = key[:open]
			for _, pair := range splitLabels(key[open+1 : len(key)-1]) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					continue
				}
				val := pair[eq+1:]
				val = strings.TrimPrefix(val, `"`)
				val = strings.TrimSuffix(val, `"`)
				sm.labels[pair[:eq]] = val
			}
		} else {
			sm.name = key
		}
		snap.samples = append(snap.samples, sm)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	var quoted bool
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			quoted = !quoted
		case ',':
			if !quoted {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// histQuantile reconstructs a quantile from a scraped histogram's
// cumulative buckets (name_bucket{le="..."} samples). Returns false
// when the histogram is absent, has no samples, or the quantile lands
// in the +Inf bucket — in all three cases the buckets support no
// honest finite estimate, so callers render a dash.
func histQuantile(s *snapshot, name string, q float64) (float64, bool) {
	type bucket struct {
		upper float64
		cum   uint64
	}
	var buckets []bucket
	for _, sm := range s.samples {
		if sm.name != name+"_bucket" {
			continue
		}
		le := sm.label("le")
		var upper float64
		if le == "+Inf" {
			upper = math.Inf(1)
		} else {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			upper = v
		}
		buckets = append(buckets, bucket{upper, uint64(sm.value)})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].upper < buckets[j].upper })
	uppers := make([]float64, len(buckets))
	cum := make([]uint64, len(buckets))
	for i, b := range buckets {
		uppers[i] = b.upper
		cum[i] = b.cum
	}
	return obs.BucketQuantileOK(uppers, cum, q)
}

// scrape fetches and parses one /metrics exposition.
func scrape(url string) (*snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	snap, err := parseMetrics(resp.Body)
	if err != nil {
		return nil, err
	}
	snap.when = time.Now()
	return snap, nil
}

// fetchFleet reads a maxgw /fleetz snapshot; any failure (endpoint
// absent, daemon is a plain maxd) degrades to nil and the table is
// simply not rendered.
func fetchFleet(url string) []gateway.BackendStatus {
	resp, err := http.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var fleet struct {
		Backends []gateway.BackendStatus `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		return nil
	}
	return fleet.Backends
}

// renderFleet draws the maxgw panel: ring membership, routing and
// resilience counters from the gw_* families, and the per-backend
// /fleetz table — closed by an aggregated fleet row (summed counters,
// load-weighted latency) — when the snapshot came back.
func renderFleet(w io.Writer, cur *snapshot, fleet []gateway.BackendStatus) {
	total, ok := cur.get("gw_backends_total")
	if !ok {
		return
	}
	var failovers float64
	var parts []string
	for _, e := range cur.sumBy("gw_failovers_total", "reason") {
		failovers += e.Value
		parts = append(parts, fmt.Sprintf("%s %.0f", e.Label, e.Value))
	}
	line := fmt.Sprintf("fleet       backends %.0f/%.0f healthy   active %.0f   failovers %.0f   shed %.0f",
		cur.val("gw_backends_healthy"), total, cur.val("gw_sessions_active"),
		failovers, cur.val("gw_shed_total"))
	if len(parts) > 0 {
		line += " (" + strings.Join(parts, ", ") + ")"
	}
	// Resilience figures only render when the gateway exports them, so
	// older gateways keep their unchanged panel.
	if milli, ok := cur.get("gw_retry_budget_tokens_milli"); ok {
		line += fmt.Sprintf("   budget %.1f tokens", milli/1000)
		if denied := cur.val("gw_retry_budget_exhausted_total"); denied > 0 {
			line += fmt.Sprintf(" (%.0f denied)", denied)
		}
	}
	fmt.Fprintln(w, line)

	hinted := cur.val("gw_peeks_total", "result", "hint")
	unhinted := cur.val("gw_peeks_total", "result", "none") + cur.val("gw_peeks_total", "result", "other")
	routing := fmt.Sprintf("routing     hinted %.0f   unhinted %.0f   peek errors %.0f   membership changes %.0f",
		hinted, unhinted, cur.val("gw_peek_errors_total"), sumAll(cur, "gw_membership_changes_total"))
	if miss := sumAll(cur, "gw_hint_misses_total"); miss > 0 {
		routing += fmt.Sprintf("   hint misses %.0f", miss)
	}
	fmt.Fprintln(w, routing)

	if len(fleet) == 0 {
		return
	}
	sessionsBy := map[string]float64{}
	for _, e := range cur.sumBy("gw_sessions_total", "backend") {
		sessionsBy[e.Label] = e.Value
	}
	t := report.NewTable("\nper-backend", "backend", "status", "breaker", "active", "sessions", "latency", "warm shapes")
	var sumActive int64
	var sumSessions float64
	var weightedLat, latWeight float64
	healthyN := 0
	for _, b := range fleet {
		status := b.Status
		if b.Healthy {
			healthyN++
		} else {
			status += " (ejected)"
		}
		breaker := b.Breaker
		if breaker == "" {
			breaker = "—"
		}
		lat := "—"
		if b.LatencyEWMAMs > 0 {
			lat = fmt.Sprintf("%.1fms", b.LatencyEWMAMs)
			if b.Ejected {
				lat += " (slow)"
			}
			// Load-weighted: a backend carrying most of the traffic should
			// dominate the fleet figure; idle backends weigh in by their
			// lifetime share, and a never-loaded one counts once.
			wgt := float64(b.Active)
			if wgt <= 0 {
				wgt = sessionsBy[b.Addr]
			}
			if wgt <= 0 {
				wgt = 1
			}
			weightedLat += wgt * b.LatencyEWMAMs
			latWeight += wgt
		}
		shapes := strings.Join(b.Shapes, " ")
		if shapes == "" {
			shapes = "—"
		}
		t.AddRow(b.Addr, status, breaker, fmt.Sprintf("%d", b.Active),
			fmt.Sprintf("%.0f", sessionsBy[b.Addr]), lat, shapes)
		sumActive += b.Active
		sumSessions += sessionsBy[b.Addr]
	}
	fleetLat := "—"
	if latWeight > 0 {
		fleetLat = fmt.Sprintf("%.1fms", weightedLat/latWeight)
	}
	t.AddRow("ALL", fmt.Sprintf("%d/%d up", healthyN, len(fleet)), "",
		fmt.Sprintf("%d", sumActive), fmt.Sprintf("%.0f", sumSessions), fleetLat, "")
	fmt.Fprint(w, t.String())
}

// sumAll sums every sample of a family across all label sets.
func sumAll(s *snapshot, name string) float64 {
	var v float64
	for _, sm := range s.samples {
		if sm.name == name {
			v += sm.value
		}
	}
	return v
}

// render draws one frame. prev may be nil (first frame: totals only,
// no rates). fleet is the optional maxgw /fleetz snapshot.
func render(w io.Writer, url string, prev, cur *snapshot, fleet []gateway.BackendStatus) {
	fmt.Fprintf(w, "maxtop — %s — %s\n\n", url, cur.when.Format("15:04:05"))

	errs := 0.0
	sessions := 0.0
	for _, sm := range cur.samples {
		switch sm.name {
		case "sessions_total":
			sessions += sm.value
		case "session_errors_total":
			errs += sm.value
		}
	}
	fmt.Fprintf(w, "sessions    total %.0f   active %.0f   errors %.0f   connections %.0f\n",
		sessions, cur.val("sessions_active"), errs, cur.val("connections_total"))

	line := fmt.Sprintf("garbling    macs %.0f   tables %.0f   table bytes %s",
		cur.val("macs_total"), cur.val("tables_garbled_total"),
		report.Bytes(uint64(cur.val("table_bytes_total"))))
	if prev != nil {
		if dt := cur.when.Sub(prev.when).Seconds(); dt > 0 {
			line += fmt.Sprintf("   rate %.1f MAC/s", (cur.val("macs_total")-prev.val("macs_total"))/dt)
		}
	}
	fmt.Fprintln(w, line)

	traceCycles := cur.val("trace_cycles_total")
	stallPct := 0.0
	if traceCycles > 0 {
		stallPct = 100 * cur.val("stall_cycles_total") / traceCycles
	}
	fmt.Fprintf(w, "memory      stall %.1f%%   peak %s   pcie drained %s\n",
		stallPct,
		report.Bytes(uint64(cur.val("peak_memory_bytes"))),
		report.Bytes(uint64(cur.val("pcie_drained_bytes_total"))))

	wireLine := fmt.Sprintf("wire        in %s   out %s",
		report.Bytes(uint64(cur.val("wire_bytes_in_total"))),
		report.Bytes(uint64(cur.val("wire_bytes_out_total"))))
	if prev != nil {
		if dt := cur.when.Sub(prev.when).Seconds(); dt > 0 {
			wireLine += fmt.Sprintf("   rate %s/s out",
				report.Bytes(uint64((cur.val("wire_bytes_out_total")-prev.val("wire_bytes_out_total"))/dt)))
		}
	}
	fmt.Fprintln(w, wireLine)

	// Runtime panel: only rendered once the daemon exposes the Go
	// runtime collector (maxd always enables it with -metrics-addr, but
	// older daemons and partial scrapes may lack it). The GC pause p99
	// is reconstructed from the scraped histogram buckets with the same
	// interpolation obs.Histogram.Quantile uses server-side.
	if _, ok := cur.get("runtime_goroutines"); ok {
		gcLine := fmt.Sprintf("runtime     goroutines %.0f   heap inuse %s   idle %s   gc cycles %.0f",
			cur.val("runtime_goroutines"),
			report.Bytes(uint64(cur.val("runtime_heap_inuse_bytes"))),
			report.Bytes(uint64(cur.val("runtime_heap_idle_bytes"))),
			cur.val("runtime_gc_cycles_total"))
		if p99, ok := histQuantile(cur, "runtime_gc_pause_seconds", 0.99); ok {
			gcLine += fmt.Sprintf("   gc pause p99 %s", report.Dur(time.Duration(p99*float64(time.Second))))
		} else {
			gcLine += "   gc pause p99 —"
		}
		fmt.Fprintln(w, gcLine)
	}

	lat := func(name string, pairs ...string) string {
		c := cur.val(name+"_count", pairs...)
		if c == 0 {
			return "—"
		}
		avg := cur.val(name+"_sum", pairs...) / c
		return fmt.Sprintf("avg %s (n=%.0f)", report.Dur(time.Duration(avg*float64(time.Second))), c)
	}
	fmt.Fprintf(w, "latency     ot_setup %s   session %s\n", lat("ot_setup_seconds"), lat("session_seconds"))

	// Precompute panel: only rendered once the daemon exposes the
	// offline/online split (maxd -precompute).
	hits := cur.sumBy("precompute_hits_total", "shape")
	misses := cur.sumBy("precompute_misses_total", "shape")
	depths := cur.sumBy("precompute_pool_depth", "shape")
	if len(hits) > 0 || len(misses) > 0 || len(depths) > 0 {
		missBy := map[string]float64{}
		var hitTotal, missTotal float64
		for _, e := range misses {
			missBy[e.Label] = e.Value
			missTotal += e.Value
		}
		hitBy := map[string]float64{}
		for _, e := range hits {
			hitBy[e.Label] = e.Value
			hitTotal += e.Value
		}
		ratio := func(h, m float64) string {
			if h+m == 0 {
				return "—"
			}
			return fmt.Sprintf("%.0f%%", 100*h/(h+m))
		}
		fmt.Fprintf(w, "precompute  hits %.0f   misses %.0f   hit ratio %s   shapes %.0f   evictions %.0f\n",
			hitTotal, missTotal, ratio(hitTotal, missTotal),
			cur.val("precompute_shapes"), cur.val("precompute_evictions_total"))
		shapes := map[string]bool{}
		for _, e := range depths {
			shapes[e.Label] = true
		}
		for l := range hitBy {
			shapes[l] = true
		}
		for l := range missBy {
			shapes[l] = true
		}
		names := make([]string, 0, len(shapes))
		for l := range shapes {
			names = append(names, l)
		}
		sort.Strings(names)
		depthBy := map[string]float64{}
		for _, e := range depths {
			depthBy[e.Label] = e.Value
		}
		t := report.NewTable("\nper-shape", "shape", "depth", "hits", "hit ratio")
		for _, l := range names {
			t.AddRow(l, fmt.Sprintf("%.0f", depthBy[l]),
				fmt.Sprintf("%.0f", hitBy[l]), ratio(hitBy[l], missBy[l]))
		}
		fmt.Fprint(w, t.String())
	}

	renderFleet(w, cur, fleet)

	cores := cur.sumBy("core_tables_total", "core")
	if len(cores) > 0 {
		idle := map[string]float64{}
		for _, e := range cur.sumBy("core_idle_slots_total", "core") {
			idle[e.Label] = e.Value
		}
		t := report.NewTable("\nper-core", "core", "tables", "idle slots")
		for _, e := range cores {
			t.AddRow(e.Label, fmt.Sprintf("%.0f", e.Value), fmt.Sprintf("%.0f", idle[e.Label]))
		}
		fmt.Fprint(w, t.String())
	}
}

// watch polls url every interval and renders n frames (n <= 0 means
// forever). When clear is set each frame redraws from the top-left
// like top(1).
func watch(w io.Writer, url string, interval time.Duration, n int, clear bool) error {
	var prev *snapshot
	for i := 0; n <= 0 || i < n; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		cur, err := scrape(url)
		if err != nil {
			return err
		}
		var fleet []gateway.BackendStatus
		if _, ok := cur.get("gw_backends_total"); ok {
			fleet = fetchFleet(strings.TrimSuffix(url, "/metrics") + "/fleetz")
		}
		if clear {
			fmt.Fprint(w, "\033[2J\033[H")
		}
		render(w, url, prev, cur, fleet)
		prev = cur
	}
	return nil
}
