package report

import (
	"fmt"
	"strings"
	"time"

	"maxelerator/internal/casestudy"
	"maxelerator/internal/fpga"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/overlay"
	"maxelerator/internal/paper"
	"maxelerator/internal/sched"
	"maxelerator/internal/tinygarble"
)

// Table1 regenerates the resource-usage table: the model (calibrated
// to the paper) next to the published values, plus the linearity
// check.
func Table1() (*Table, error) {
	t := NewTable("Table 1: Resource usage of one MAC unit",
		"bit-width", "LUT (model)", "LUT (paper)", "LUTRAM (model)", "LUTRAM (paper)", "FF (model)", "FF (paper)")
	for _, b := range paper.Widths {
		r, err := fpga.MACUnitResources(b)
		if err != nil {
			return nil, err
		}
		p := paper.Table1[b]
		t.AddRow(fmt.Sprint(b),
			Sci(float64(r.LUT)), Sci(p.LUT),
			Sci(float64(r.LUTRAM)), Sci(p.LUTRAM),
			Sci(float64(r.FlipFlop)), Sci(p.FF))
	}
	return t, nil
}

// SoftwareMeasurement is one live TinyGarble-style measurement on the
// benchmarking host.
type SoftwareMeasurement struct {
	// Width is the operand bit-width.
	Width int
	// TimePerMAC is the measured per-MAC garbling latency.
	TimePerMAC time.Duration
}

// MeasureSoftware garbles `rounds` MACs per width with the software
// framework and returns per-width measurements.
func MeasureSoftware(rounds int) ([]SoftwareMeasurement, error) {
	out := make([]SoftwareMeasurement, 0, len(paper.Widths))
	for _, b := range paper.Widths {
		f, err := tinygarble.New(b)
		if err != nil {
			return nil, err
		}
		st, err := f.GarbleMACRounds(rounds)
		if err != nil {
			return nil, err
		}
		out = append(out, SoftwareMeasurement{Width: b, TimePerMAC: st.TimePerMAC()})
	}
	return out, nil
}

// Table2 regenerates the throughput comparison. When measured is
// non-nil, a "this host" software row is added next to the paper's
// reference rows.
func Table2(measured []SoftwareMeasurement) (*Table, error) {
	t := NewTable("Table 2: Throughput comparison with state-of-the-art GC frameworks",
		"framework", "bit-width", "cycles/MAC", "time/MAC", "MAC/s", "cores", "MAC/s/core", "MAXelerator per-core ×")

	ov := overlay.NewModel()
	addPaperRow := func(row paper.Table2Row, speedup map[int]float64) {
		for _, b := range paper.Widths {
			ratio := "-"
			if speedup != nil {
				ratio = Ratio(speedup[b])
			}
			t.AddRow(row.Framework, fmt.Sprint(b),
				Sci(row.CyclesPerMAC[b]), Dur(row.TimePerMAC[b]),
				Sci(row.ThroughputMACs[b]), fmt.Sprint(row.Cores[b]),
				Sci(row.PerCoreMACs[b]), ratio)
		}
	}
	addPaperRow(paper.TinyGarble, paper.SpeedupPerCoreVsTinyGarble)

	if measured != nil {
		for _, m := range measured {
			sim, err := maxsim.New(maxsim.Config{Width: m.Width})
			if err != nil {
				return nil, err
			}
			perCore := 0.0
			if m.TimePerMAC > 0 {
				perCore = 1 / m.TimePerMAC.Seconds()
			}
			ratio := sim.ThroughputPerCoreMACsPerSec() / perCore
			t.AddRow("software (this host, Go)", fmt.Sprint(m.Width),
				"-", Dur(m.TimePerMAC), Sci(perCore), "1", Sci(perCore), Ratio(ratio))
		}
	}

	addPaperRow(paper.Overlay, paper.SpeedupPerCoreVsOverlay)
	for _, b := range paper.Widths {
		c, err := ov.CyclesPerMAC(b)
		if err != nil {
			return nil, err
		}
		tp, err := ov.ThroughputMACsPerSec(b)
		if err != nil {
			return nil, err
		}
		pc, err := ov.PerCoreMACsPerSec(b)
		if err != nil {
			return nil, err
		}
		td, err := ov.TimePerMAC(b)
		if err != nil {
			return nil, err
		}
		t.AddRow("overlay model (ours)", fmt.Sprint(b),
			Sci(c), Dur(td), Sci(tp), fmt.Sprint(overlay.Cores), Sci(pc), "-")
	}

	addPaperRow(paper.MAXelerator, nil)
	for _, b := range paper.Widths {
		sim, err := maxsim.New(maxsim.Config{Width: b})
		if err != nil {
			return nil, err
		}
		t.AddRow("MAXelerator sim (ours)", fmt.Sprint(b),
			fmt.Sprint(sim.Schedule().CyclesPerMAC()), Dur(sim.TimePerMAC()),
			Sci(sim.ThroughputMACsPerSec()), fmt.Sprint(sim.Schedule().NumCores()),
			Sci(sim.ThroughputPerCoreMACsPerSec()), "-")
	}
	return t, nil
}

// Table3 regenerates the ridge-regression study.
func Table3() (*Table, error) {
	rows, err := casestudy.Ridge(casestudy.PaperSpeedup32().Factor())
	if err != nil {
		return nil, err
	}
	t := NewTable("Table 3: Ridge regression runtime improvement",
		"dataset", "n", "d", "baseline [7] (s)", "ours model (s)", "ours paper (s)", "impr. model", "impr. paper")
	for _, r := range rows {
		t.AddRow(r.Dataset.Name, fmt.Sprint(r.Dataset.N), fmt.Sprint(r.Dataset.D),
			fmt.Sprintf("%.0f", r.Dataset.BaselineSeconds),
			fmt.Sprintf("%.1f", r.ModeledSeconds),
			fmt.Sprintf("%.1f", r.Dataset.OursSeconds),
			Ratio(r.ModeledImprovement), Ratio(r.Dataset.Improvement))
	}
	return t, nil
}

// CaseRecommendation renders the §6 recommendation study.
func CaseRecommendation() (*Table, error) {
	res, err := casestudy.Recommendation(casestudy.PaperSpeedup32().Factor())
	if err != nil {
		return nil, err
	}
	t := NewTable("Case study: recommendation system (matrix factorisation, MovieLens)",
		"metric", "value")
	t.AddRow("baseline per iteration [6]", Dur(res.BaselinePerIter))
	t.AddRow("gradient (MAC) share", fmt.Sprintf("%.0f%%", 100*res.GradientShare))
	t.AddRow("per-MAC speedup", Ratio(res.MACSpeedup))
	t.AddRow("accelerated per iteration (model)", Dur(res.AcceleratedPerIter))
	t.AddRow("accelerated per iteration (paper)", Dur(res.PaperAcceleratedPerIter))
	t.AddRow("improvement", fmt.Sprintf("%.0f%%", res.ImprovementPct))
	return t, nil
}

// CasePortfolio renders the §6 portfolio study.
func CasePortfolio() (*Table, error) {
	m, err := casestudy.Portfolio(casestudy.PaperSpeedup32())
	if err != nil {
		return nil, err
	}
	t := NewTable("Case study: portfolio risk analysis (w·cov·wᵀ, 252 rounds, size 2)",
		"metric", "value")
	t.AddRow("MACs per round", fmt.Sprint(m.MACsPerRound))
	t.AddRow("TinyGarble total (model)", Dur(m.SoftwareTime))
	t.AddRow("TinyGarble total (paper)", Dur(m.PaperSoftware))
	t.AddRow("MAXelerator total (model)", Dur(m.AcceleratedTime))
	t.AddRow("MAXelerator total (paper)", Dur(m.PaperAccelerated))
	t.AddRow("modelled speedup", Ratio(m.SoftwareTime.Seconds()/m.AcceleratedTime.Seconds()))
	return t, nil
}

// Fig2 renders the tree-multiplication dataflow for bit-width b.
func Fig2(b int) (string, error) {
	s, err := sched.Build(b)
	if err != nil {
		return "", err
	}
	return s.RenderTree(), nil
}

// Fig3 renders the MUX_ADD/TREE stage grid for bit-width b.
func Fig3(b int) (string, error) {
	s, err := sched.Build(b)
	if err != nil {
		return "", err
	}
	return s.RenderStageGrid(), nil
}

// PerformanceSweep renders the §4.3 formulas over a width sweep.
func PerformanceSweep(widths []int) (*Table, error) {
	t := NewTable("§4.3 performance analysis sweep",
		"bit-width", "GC cores", "idle slots/stage", "cycles/MAC", "latency (cycles)", "tables/MAC", "MAC/s (200MHz)", "MAC/s/core")
	for _, b := range widths {
		s, err := sched.Build(b)
		if err != nil {
			return nil, err
		}
		sim, err := maxsim.New(maxsim.Config{Width: b})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(b), fmt.Sprint(s.NumCores()), fmt.Sprint(s.IdleSlotsPerStage()),
			fmt.Sprint(s.CyclesPerMAC()), fmt.Sprint(s.LatencyCycles()), fmt.Sprint(s.TablesPerMAC()),
			Sci(sim.ThroughputMACsPerSec()), Sci(sim.ThroughputPerCoreMACsPerSec()))
	}
	return t, nil
}

// All renders every table and figure, optionally with live software
// measurements, as one report.
func All(measured []SoftwareMeasurement) (string, error) {
	var sb strings.Builder
	t1, err := Table1()
	if err != nil {
		return "", err
	}
	t2, err := Table2(measured)
	if err != nil {
		return "", err
	}
	t3, err := Table3()
	if err != nil {
		return "", err
	}
	rec, err := CaseRecommendation()
	if err != nil {
		return "", err
	}
	pf, err := CasePortfolio()
	if err != nil {
		return "", err
	}
	f2, err := Fig2(8)
	if err != nil {
		return "", err
	}
	f3, err := Fig3(8)
	if err != nil {
		return "", err
	}
	sweep, err := PerformanceSweep([]int{4, 8, 16, 32, 64})
	if err != nil {
		return "", err
	}
	t3ops, err := Table3Ops()
	if err != nil {
		return "", err
	}
	tl, err := Timeline(8, 4, 44)
	if err != nil {
		return "", err
	}
	for _, s := range []string{t1.String(), t2.String(), t3.String(), t3ops.String(), rec.String(), pf.String(), f2, f3, tl, sweep.String()} {
		sb.WriteString(s)
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// Table3Ops renders the gate-count-derived ridge model next to the
// published Table 3 improvements — a derivation that never reads the
// published factors.
func Table3Ops() (*Table, error) {
	dims := make([]int, 0, len(paper.Table3))
	for _, ds := range paper.Table3 {
		dims = append(dims, ds.D)
	}
	rows, err := casestudy.RidgeOpsSweep(dims, casestudy.PaperSpeedup32())
	if err != nil {
		return nil, err
	}
	t := NewTable("Table 3 (ops model): ridge pipeline priced from gate counts",
		"d", "MACs", "divs", "sqrts", "MAC share", "software", "accelerated", "improvement", "paper impr.")
	for i, r := range rows {
		t.AddRow(fmt.Sprint(r.D),
			fmt.Sprint(r.MACs), fmt.Sprint(r.Divs), fmt.Sprint(r.Sqrts),
			fmt.Sprintf("%.3f", r.MACShare),
			Dur(r.SoftwareTime), Dur(r.AcceleratedTime),
			Ratio(r.Improvement), Ratio(paper.Table3[i].Improvement))
	}
	return t, nil
}

// Timeline renders the pipeline fill/steady/drain picture for n MACs.
func Timeline(b, n, maxStages int) (string, error) {
	s, err := sched.Build(b)
	if err != nil {
		return "", err
	}
	tl, err := s.BuildTimeline(n)
	if err != nil {
		return "", err
	}
	return tl.Render(maxStages), nil
}
