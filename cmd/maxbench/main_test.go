package main

import "testing"

func TestRunTables(t *testing.T) {
	for _, table := range []int{1, 2, 3} {
		if err := run(table, 0, "", 8, true, 1); err != nil {
			t.Fatalf("table %d: %v", table, err)
		}
	}
	if err := run(9, 0, "", 8, true, 1); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestRunFigures(t *testing.T) {
	for _, fig := range []int{2, 3} {
		if err := run(0, fig, "", 8, true, 1); err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
	}
	if err := run(0, 7, "", 8, true, 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run(0, 2, "", 6, true, 1); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestRunCaseStudies(t *testing.T) {
	for _, cs := range []string{"recommendation", "portfolio"} {
		if err := run(0, 0, cs, 8, true, 1); err != nil {
			t.Fatalf("case %s: %v", cs, err)
		}
	}
	if err := run(0, 0, "timetravel", 8, true, 1); err == nil {
		t.Fatal("unknown case study accepted")
	}
}

func TestRunAllFast(t *testing.T) {
	if err := run(0, 0, "", 8, true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithLiveMeasurement(t *testing.T) {
	// One MAC round per width keeps the live path fast in tests.
	if err := run(2, 0, "", 8, false, 1); err != nil {
		t.Fatal(err)
	}
}
