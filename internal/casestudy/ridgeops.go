package casestudy

import (
	"fmt"
	"time"

	"maxelerator/internal/circuit"
)

// RidgeOpsResult prices the Nikolaenko et al. [7] ridge pipeline from
// first principles: the §6 operation counts — O(d³) MACs, O(d) square
// roots and O(d²) divisions in the Cholesky phase, O(d²) MACs in the
// back-substitution phase — multiplied by the real AND-table counts of
// this repository's netlists. It complements the calibrated Table 3
// model with a derivation that does not use the published improvement
// factors at all.
type RidgeOpsResult struct {
	// D is the feature dimension.
	D int
	// MACs, Divs and Sqrts are the operation counts.
	MACs, Divs, Sqrts uint64
	// MACTables, DivTables and SqrtTables are AND tables per operation,
	// from the synthesised netlists.
	MACTables, DivTables, SqrtTables uint64
	// SoftwareTime prices all tables at the software per-table rate.
	SoftwareTime time.Duration
	// AcceleratedTime runs the MACs on MAXelerator and leaves division
	// and square root in software GC (the accelerator is MAC-only).
	AcceleratedTime time.Duration
	// Improvement is SoftwareTime / AcceleratedTime.
	Improvement float64
	// MACShare is the fraction of software AND tables spent in MACs —
	// the quantity the calibrated Table 3 model infers from published
	// numbers, here derived from gate counts.
	MACShare float64
}

// ridgeGateCounts synthesises the three operation netlists at
// bit-width b and returns their AND-table counts.
func ridgeGateCounts(b int) (mac, div, sqrt uint64, err error) {
	macCkt, err := circuit.MAC(circuit.MACConfig{Width: b, AccWidth: 2 * b, Signed: true})
	if err != nil {
		return 0, 0, 0, err
	}
	bd := circuit.NewBuilder()
	x := bd.GarblerInputs(b)
	y := bd.EvaluatorInputs(b)
	q, _ := bd.DivMod(x, y)
	bd.OutputWord(q)
	divCkt, err := bd.Build()
	if err != nil {
		return 0, 0, 0, err
	}
	bs := circuit.NewBuilder()
	xs := bs.GarblerInputs(b)
	bs.EvaluatorInputs(0)
	bs.OutputWord(bs.Sqrt(xs))
	sqrtCkt, err := bs.Build()
	if err != nil {
		return 0, 0, 0, err
	}
	return uint64(macCkt.Stats().ANDs), uint64(divCkt.Stats().ANDs), uint64(sqrtCkt.Stats().ANDs), nil
}

// RidgeOps prices the ridge pipeline at feature dimension d and the
// given per-MAC latencies (whose Width sets the netlist bit-width).
func RidgeOps(d int, sw MACSpeedup) (RidgeOpsResult, error) {
	if d < 2 {
		return RidgeOpsResult{}, fmt.Errorf("casestudy: feature dimension %d must be ≥ 2", d)
	}
	if sw.SoftwarePerMAC <= 0 || sw.AcceleratedPerMAC <= 0 {
		return RidgeOpsResult{}, fmt.Errorf("casestudy: per-MAC latencies must be positive")
	}
	macT, divT, sqrtT, err := ridgeGateCounts(sw.Width)
	if err != nil {
		return RidgeOpsResult{}, err
	}
	dd := uint64(d)
	res := RidgeOpsResult{
		D: d,
		// Cholesky: d³/6 MACs, d(d−1)/2 divisions, d square roots;
		// back substitution: d² MACs and 2d divisions.
		MACs:       dd*dd*dd/6 + dd*dd,
		Divs:       dd*(dd-1)/2 + 2*dd,
		Sqrts:      dd,
		MACTables:  macT,
		DivTables:  divT,
		SqrtTables: sqrtT,
	}

	// Software prices every AND table at the same rate, derived from
	// the software per-MAC latency.
	perTable := float64(sw.SoftwarePerMAC) / float64(macT)
	macTables := float64(res.MACs * macT)
	otherTables := float64(res.Divs*divT + res.Sqrts*sqrtT)
	res.SoftwareTime = time.Duration((macTables + otherTables) * perTable)
	res.MACShare = macTables / (macTables + otherTables)

	// Accelerated: MACs at the accelerator rate, everything else stays
	// in software GC.
	res.AcceleratedTime = time.Duration(float64(res.MACs)*float64(sw.AcceleratedPerMAC)) +
		time.Duration(otherTables*perTable)
	if res.AcceleratedTime > 0 {
		res.Improvement = float64(res.SoftwareTime) / float64(res.AcceleratedTime)
	}
	return res, nil
}

// RidgeOpsSweep runs the ops model over the Table 3 feature
// dimensions.
func RidgeOpsSweep(dims []int, sw MACSpeedup) ([]RidgeOpsResult, error) {
	out := make([]RidgeOpsResult, 0, len(dims))
	for _, d := range dims {
		r, err := RidgeOps(d, sw)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
