package seqgc

import (
	"crypto/rand"
	mrand "math/rand"
	"testing"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
)

func sessions(t *testing.T, ckt *circuit.Circuit) (*GarblerSession, *EvaluatorSession) {
	t.Helper()
	p := gc.DefaultParams()
	gs, err := NewGarblerSession(p, rand.Reader, ckt)
	if err != nil {
		t.Fatal(err)
	}
	es, err := NewEvaluatorSession(p, ckt)
	if err != nil {
		t.Fatal(err)
	}
	return gs, es
}

func pickLabels(gb *gc.Garbled, bits []bool) []label.Label {
	out := make([]label.Label, len(bits))
	for i, v := range bits {
		out[i] = gb.EvalPairs[i].Get(v)
	}
	return out
}

func TestNilCircuitRejected(t *testing.T) {
	p := gc.DefaultParams()
	if _, err := NewGarblerSession(p, rand.Reader, nil); err == nil {
		t.Fatal("nil circuit accepted by garbler session")
	}
	if _, err := NewEvaluatorSession(p, nil); err == nil {
		t.Fatal("nil circuit accepted by evaluator session")
	}
}

func TestMultiRoundMACAccumulates(t *testing.T) {
	ckt := circuit.MustMAC(circuit.MACConfig{Width: 8, AccWidth: 20, Signed: true})
	gs, es := sessions(t, ckt)
	rng := mrand.New(mrand.NewSource(1))
	var want int64
	for round := 0; round < 8; round++ {
		x := int64(rng.Intn(256) - 128)
		a := int64(rng.Intn(256) - 128)
		want += x * a
		gb, err := gs.NextRound(circuit.Int64ToBits(x, 8))
		if err != nil {
			t.Fatal(err)
		}
		res, err := es.NextRound(&gb.Material, pickLabels(gb, circuit.Int64ToBits(a, 8)))
		if err != nil {
			t.Fatal(err)
		}
		if got := circuit.BitsToInt64(res.Outputs); got != want {
			t.Fatalf("round %d: acc = %d, want %d", round, got, want)
		}
	}
	if gs.Round() != 8 || es.Round() != 8 {
		t.Fatalf("round counters %d/%d", gs.Round(), es.Round())
	}
}

func TestResetStartsNewChain(t *testing.T) {
	ckt := circuit.MustMAC(circuit.MACConfig{Width: 8, AccWidth: 16})
	gs, es := sessions(t, ckt)

	runChain := func(xs, as []uint64) uint64 {
		var got uint64
		for i := range xs {
			gb, err := gs.NextRound(circuit.Uint64ToBits(xs[i], 8))
			if err != nil {
				t.Fatal(err)
			}
			res, err := es.NextRound(&gb.Material, pickLabels(gb, circuit.Uint64ToBits(as[i], 8)))
			if err != nil {
				t.Fatal(err)
			}
			got = circuit.BitsToUint64(res.Outputs)
		}
		return got
	}

	first := runChain([]uint64{3, 5}, []uint64{7, 11})
	if first != 3*7+5*11 {
		t.Fatalf("first chain = %d", first)
	}
	gs.Reset()
	es.Reset()
	second := runChain([]uint64{2}, []uint64{9})
	if second != 18 {
		t.Fatalf("second chain after reset = %d, want 18 (state leaked: %d)", second, first)
	}
}

func TestTweaksNeverRepeatAcrossReset(t *testing.T) {
	ckt := circuit.MustMAC(circuit.MACConfig{Width: 4, AccWidth: 8})
	gs, _ := sessions(t, ckt)
	gb1, err := gs.NextRound(circuit.Uint64ToBits(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	gs.Reset()
	gb2, err := gs.NextRound(circuit.Uint64ToBits(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if gb2.Material.TweakBase < gb1.NextTweak {
		t.Fatalf("round 2 tweak base %d overlaps round 1 range ending %d", gb2.Material.TweakBase, gb1.NextTweak)
	}
}

func TestGarblerRejectsWrongInputWidth(t *testing.T) {
	ckt := circuit.MustMAC(circuit.MACConfig{Width: 8, AccWidth: 16})
	gs, _ := sessions(t, ckt)
	if _, err := gs.NextRound(make([]bool, 5)); err == nil {
		t.Fatal("wrong input width accepted")
	}
}

func TestCombinationalCircuitsWorkToo(t *testing.T) {
	// Sessions degrade gracefully to ordinary per-execution garbling
	// when the circuit has no state.
	b := circuit.NewBuilder()
	x := b.GarblerInputs(4)
	y := b.EvaluatorInputs(4)
	b.Outputs(b.GEq(x, y))
	ckt := b.MustBuild()
	gs, es := sessions(t, ckt)
	for _, tc := range []struct {
		x, y uint64
		want bool
	}{{5, 3, true}, {3, 5, false}, {7, 7, true}} {
		gb, err := gs.NextRound(circuit.Uint64ToBits(tc.x, 4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := es.NextRound(&gb.Material, pickLabels(gb, circuit.Uint64ToBits(tc.y, 4)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs[0] != tc.want {
			t.Fatalf("GEq(%d,%d) = %v", tc.x, tc.y, res.Outputs[0])
		}
	}
}
