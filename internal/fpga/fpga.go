// Package fpga models the hardware substrate MAXelerator runs on: the
// target device catalogue, clocking, the LUT/LUTRAM/flip-flop resource
// model of one MAC unit (Table 1 of the paper), and the PCIe link that
// drains garbled tables to the host CPU.
//
// The resource model is calibrated to the paper's published synthesis
// results at b ∈ {8, 16, 32} and interpolates linearly elsewhere —
// Table 1's claim is precisely that "the underlying resource
// utilization of our design increases linearly with b".
package fpga

import (
	"fmt"
	"math"
	"time"
)

// Resources is a bundle of FPGA fabric resources.
type Resources struct {
	// LUT is the number of 6-input look-up tables.
	LUT int
	// LUTRAM is the number of LUTs used as distributed RAM (the AES
	// s-boxes of the GC engines, §5.1).
	LUTRAM int
	// FlipFlop is the number of fabric registers (the shift registers
	// of the TREE segment dominate, §4.3).
	FlipFlop int
}

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{LUT: r.LUT + o.LUT, LUTRAM: r.LUTRAM + o.LUTRAM, FlipFlop: r.FlipFlop + o.FlipFlop}
}

// Scale returns the resources multiplied by n.
func (r Resources) Scale(n int) Resources {
	return Resources{LUT: r.LUT * n, LUTRAM: r.LUTRAM * n, FlipFlop: r.FlipFlop * n}
}

// macUnitTable holds the paper's Table 1 synthesis results.
var macUnitTable = map[int]Resources{
	8:  {LUT: 29500, LUTRAM: 128, FlipFlop: 24400},
	16: {LUT: 59100, LUTRAM: 384, FlipFlop: 48800},
	32: {LUT: 111000, LUTRAM: 640, FlipFlop: 84000},
}

// calibratedWidths are the bit-widths with published numbers.
var calibratedWidths = []int{8, 16, 32}

// MACUnitResources returns the fabric cost of one MAC unit at
// bit-width b. Calibrated points return the paper's exact Table 1
// values; other widths interpolate (or extrapolate) linearly on b.
func MACUnitResources(b int) (Resources, error) {
	if b < 2 || b%2 != 0 {
		return Resources{}, fmt.Errorf("fpga: bit-width %d must be an even integer ≥ 2", b)
	}
	if r, ok := macUnitTable[b]; ok {
		return r, nil
	}
	// Pick the calibration segment bracketing b, or the nearest
	// segment for extrapolation.
	lo, hi := calibratedWidths[0], calibratedWidths[1]
	if b > calibratedWidths[1] {
		lo, hi = calibratedWidths[1], calibratedWidths[2]
	}
	rl, rh := macUnitTable[lo], macUnitTable[hi]
	t := float64(b-lo) / float64(hi-lo)
	lerp := func(a, b int) int {
		v := math.Round(float64(a) + t*float64(b-a))
		if v < 1 {
			// Extrapolation below the calibrated range can hit zero;
			// every real design consumes at least something.
			v = 1
		}
		return int(v)
	}
	return Resources{
		LUT:      lerp(rl.LUT, rh.LUT),
		LUTRAM:   lerp(rl.LUTRAM, rh.LUTRAM),
		FlipFlop: lerp(rl.FlipFlop, rh.FlipFlop),
	}, nil
}

// Device describes an FPGA part.
type Device struct {
	// Name is the part name.
	Name string
	// Fabric is the total available resources.
	Fabric Resources
	// MaxClockMHz is the maximum clock the MAXelerator design closes
	// timing at on this part.
	MaxClockMHz float64
}

// VCU108 is the paper's evaluation platform: a Virtex UltraSCALE
// VCU108 board with the XCVU095 part. Fabric numbers are the public
// part figures; the 200 MHz clock is the paper's reported maximum.
var VCU108 = Device{
	Name: "Virtex UltraSCALE VCU108 (XCVU095)",
	Fabric: Resources{
		LUT:      537600,
		LUTRAM:   76800,
		FlipFlop: 1075200,
	},
	MaxClockMHz: 200,
}

// ClockPeriod returns the period of the device clock.
func (d Device) ClockPeriod() time.Duration {
	return time.Duration(float64(time.Second) / (d.MaxClockMHz * 1e6))
}

// CyclesToDuration converts a cycle count at the device clock.
func (d Device) CyclesToDuration(cycles uint64) time.Duration {
	return time.Duration(float64(cycles) * 1e9 / (d.MaxClockMHz * 1e6) * float64(time.Nanosecond))
}

// MaxMACUnits reports how many MAC units of bit-width b fit in the
// fabric, limited by whichever resource is scarcest.
func (d Device) MaxMACUnits(b int) (int, error) {
	r, err := MACUnitResources(b)
	if err != nil {
		return 0, err
	}
	n := d.Fabric.LUT / r.LUT
	if m := d.Fabric.LUTRAM / r.LUTRAM; m < n {
		n = m
	}
	if m := d.Fabric.FlipFlop / r.FlipFlop; m < n {
		n = m
	}
	return n, nil
}

// Utilization reports the fraction of the scarcest fabric resource
// consumed by r.
func (d Device) Utilization(r Resources) float64 {
	u := float64(r.LUT) / float64(d.Fabric.LUT)
	if v := float64(r.LUTRAM) / float64(d.Fabric.LUTRAM); v > u {
		u = v
	}
	if v := float64(r.FlipFlop) / float64(d.Fabric.FlipFlop); v > u {
		u = v
	}
	return u
}

// PCIeLink models the Xillybus host interconnect (§5, [27]) as a
// bandwidth/latency pipe.
type PCIeLink struct {
	// BandwidthMBps is sustained throughput in MiB/s.
	BandwidthMBps float64
	// LatencyPerTransfer is the fixed per-DMA-transfer overhead.
	LatencyPerTransfer time.Duration
}

// DefaultPCIe approximates the Xillybus Gen2 x4 core used by the
// paper's platform.
var DefaultPCIe = PCIeLink{BandwidthMBps: 800, LatencyPerTransfer: 10 * time.Microsecond}

// TransferTime returns the modelled time to move n bytes to the host.
func (l PCIeLink) TransferTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return l.LatencyPerTransfer + time.Duration(float64(n)/(l.BandwidthMBps*1024*1024)*float64(time.Second))
}

// SustainsThroughput reports whether the link can drain bytesPerSecond
// of garbled-table traffic — the check behind the paper's closing
// caveat that "after certain threshold, communication capability of
// the server may become the bottleneck".
func (l PCIeLink) SustainsThroughput(bytesPerSecond float64) bool {
	return bytesPerSecond <= l.BandwidthMBps*1024*1024
}

// Utilization is the capacity-model cost hook behind that caveat as a
// number: the fraction of the link's sustained bandwidth bytesPerSecond
// consumes. Values above 1 mean the offered table traffic exceeds what
// the link can drain — the queueing regime where transfer, not
// garbling, sets the fleet's throughput ceiling. Zero-bandwidth links
// report +Inf for any positive load.
func (l PCIeLink) Utilization(bytesPerSecond float64) float64 {
	if bytesPerSecond <= 0 {
		return 0
	}
	cap := l.BandwidthMBps * 1024 * 1024
	if cap <= 0 {
		return math.Inf(1)
	}
	return bytesPerSecond / cap
}
