package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

func TestHistogramQuantileInterpolates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 4})
	// 10 samples uniformly in (0,1], 10 in (1,2]: the median splits the
	// two buckets and p75 lands mid-way through the second.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1 (boundary of first bucket)", got)
	}
	if got := h.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p75 = %v, want 1.5 (mid second bucket)", got)
	}
	if got := h.Quantile(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p25 = %v, want 0.5 (mid first bucket)", got)
	}
	// Out-of-range q clamps rather than extrapolating.
	if got := h.Quantile(2); math.Abs(got-2) > 1e-9 {
		t.Fatalf("q=2 clamped = %v, want 2", got)
	}
}

func TestHistogramQuantileInfSafe(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inf_seconds", "", []float64{1, 2})
	h.Observe(100) // lands only in +Inf
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("+Inf quantile = %v, want clamp to highest finite bound 2", got)
	}
}

func TestHistogramQuantileEmptyAndNil(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e_seconds", "", []float64{1})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil quantile = %v", got)
	}
}

func TestBucketQuantileTable(t *testing.T) {
	uppers := []float64{0.1, 0.5, 1, math.Inf(1)}
	for _, tc := range []struct {
		name string
		cum  []uint64
		q    float64
		want float64
	}{
		{"all in first", []uint64{10, 10, 10, 10}, 0.5, 0.05},
		{"median spans", []uint64{5, 10, 10, 10}, 0.5, 0.1},
		{"upper bucket", []uint64{0, 0, 10, 10}, 0.5, 0.75},
		{"inf clamps", []uint64{0, 0, 0, 10}, 0.99, 1},
		{"empty", []uint64{0, 0, 0, 0}, 0.5, 0},
	} {
		if got := BucketQuantile(uppers, tc.cum, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("%s: BucketQuantile = %v, want %v", tc.name, got, tc.want)
		}
	}
	if got := BucketQuantile(nil, nil, 0.5); got != 0 {
		t.Fatalf("nil buckets = %v", got)
	}
	if got := BucketQuantile([]float64{1}, []uint64{1, 2}, 0.5); got != 0 {
		t.Fatalf("mismatched lengths = %v", got)
	}
}

// TestBucketQuantileOK pins the honesty bit: the +Inf-winner clamp and
// the empty histogram are floors, not estimates, and must report !ok so
// renderers dash them out instead of printing a fabricated number.
func TestBucketQuantileOK(t *testing.T) {
	uppers := []float64{0.1, 0.5, 1, math.Inf(1)}
	for _, tc := range []struct {
		name   string
		cum    []uint64
		q      float64
		want   float64
		wantOK bool
	}{
		{"interpolates", []uint64{5, 10, 10, 10}, 0.5, 0.1, true},
		{"inf winner reports not-ok", []uint64{0, 0, 0, 10}, 0.99, 1, false},
		{"mass split, quantile above finite", []uint64{5, 5, 5, 10}, 0.99, 1, false},
		{"empty", []uint64{0, 0, 0, 0}, 0.5, 0, false},
	} {
		got, ok := BucketQuantileOK(uppers, tc.cum, tc.q)
		if math.Abs(got-tc.want) > 1e-9 || ok != tc.wantOK {
			t.Fatalf("%s: BucketQuantileOK = (%v, %v), want (%v, %v)",
				tc.name, got, ok, tc.want, tc.wantOK)
		}
	}
	// Only a +Inf bucket and it holds samples: there is no finite bound
	// to clamp to at all.
	if got, ok := BucketQuantileOK([]float64{math.Inf(1)}, []uint64{3}, 0.99); got != 0 || ok {
		t.Fatalf("inf-only = (%v, %v), want (0, false)", got, ok)
	}
	if _, ok := BucketQuantileOK(nil, nil, 0.5); ok {
		t.Fatal("nil buckets reported ok")
	}
}

// TestRuntimeCollectorObservesForcedGC is the satellite contract: a
// forced GC between two collects must advance the cycle counter and
// land at least one pause sample in the histogram.
func TestRuntimeCollectorObservesForcedGC(t *testing.T) {
	r := NewRegistry()
	rc := NewRuntimeCollector(r)
	rc.Collect()
	cyclesBefore := r.Counter("runtime_gc_cycles_total", "").Value()
	pausesBefore := r.Histogram("runtime_gc_pause_seconds", "", GCPauseBuckets).Count()

	runtime.GC()
	rc.Collect()

	if got := r.Counter("runtime_gc_cycles_total", "").Value(); got <= cyclesBefore {
		t.Fatalf("gc_cycles = %d, want > %d after forced GC", got, cyclesBefore)
	}
	if got := r.Histogram("runtime_gc_pause_seconds", "", GCPauseBuckets).Count(); got <= pausesBefore {
		t.Fatalf("pause samples = %d, want > %d after forced GC", got, pausesBefore)
	}
	if got := r.Gauge("runtime_goroutines", "").Value(); got < 1 {
		t.Fatalf("runtime_goroutines = %d", got)
	}
	if got := r.Gauge("runtime_heap_inuse_bytes", "").Value(); got <= 0 {
		t.Fatalf("runtime_heap_inuse_bytes = %d", got)
	}
	if got := r.Histogram("runtime_sched_latency_seconds", "", SchedLatencyBuckets).Count(); got < 2 {
		t.Fatalf("sched latency samples = %d, want one per collect", got)
	}
}

// TestRuntimeCollectorIdempotentBetweenGCs: with no GC between
// collects, cycles and pauses must not move (no double-counting off
// the circular PauseNs buffer).
func TestRuntimeCollectorIdempotentBetweenGCs(t *testing.T) {
	r := NewRegistry()
	rc := NewRuntimeCollector(r)
	runtime.GC()
	rc.Collect()
	cycles := r.Counter("runtime_gc_cycles_total", "").Value()
	pauses := r.Histogram("runtime_gc_pause_seconds", "", GCPauseBuckets).Count()
	rc.Collect()
	rc.Collect()
	if got := r.Counter("runtime_gc_cycles_total", "").Value(); got != cycles {
		t.Fatalf("gc_cycles drifted %d -> %d without a GC", cycles, got)
	}
	if got := r.Histogram("runtime_gc_pause_seconds", "", GCPauseBuckets).Count(); got != pauses {
		t.Fatalf("pause samples drifted %d -> %d without a GC", pauses, got)
	}
}

func TestRuntimeCollectorNilSafety(t *testing.T) {
	var rc *RuntimeCollector
	rc.Collect() // must not panic
	NewRuntimeCollector(nil).Collect()
	var o *Obs
	if got := o.EnableRuntimeMetrics(); got != nil {
		t.Fatalf("nil obs returned a collector: %v", got)
	}
	o.OnScrape(func() {})
}

// TestRuntimeMetricsOnScrape: enabling runtime metrics on an Obs makes
// every /metrics scrape carry a fresh runtime sample.
func TestRuntimeMetricsOnScrape(t *testing.T) {
	o := New(0)
	o.EnableRuntimeMetrics()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"runtime_goroutines ",
		"runtime_heap_inuse_bytes ",
		"runtime_gc_pause_seconds_bucket",
		"runtime_sched_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
}
