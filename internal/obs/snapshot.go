package obs

// Machine-readable registry snapshots. The Prometheus text exposition
// (/metrics) is for scrapers; this JSON form is for programs inside the
// repo — above all the capacity-model calibrator (internal/capmodel),
// which turns live histogram buckets into simulator service-time
// distributions and must not re-parse exposition text to do it.
// Histograms are exported with their exact bucket bounds and exact
// per-bucket counts, so a snapshot round-trips losslessly.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// HistogramSnapshot is one histogram child frozen at snapshot time.
// Counts are per-bucket (non-cumulative): Counts[i] is the samples that
// landed in (Bounds[i-1], Bounds[i]], and the final element — one past
// the last bound — is the implicit +Inf bucket.
type HistogramSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	// Bounds are the finite bucket upper bounds, ascending.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the +Inf bucket.
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
}

// CumulativeCounts renders the buckets in Prometheus `le` style:
// entry i is the samples at or below Bounds[i], the final entry the
// total. This is the shape BucketQuantile consumes.
func (h HistogramSnapshot) CumulativeCounts() []uint64 {
	out := make([]uint64, len(h.Counts))
	var run uint64
	for i, c := range h.Counts {
		run += c
		out[i] = run
	}
	return out
}

// CounterSnapshot is one counter child frozen at snapshot time.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugeSnapshot is one gauge child frozen at snapshot time.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// Snapshot is a point-in-time machine-readable dump of a registry.
type Snapshot struct {
	Histograms []HistogramSnapshot `json:"histograms"`
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
}

// Histogram returns the snapshot of the named histogram whose labels
// are a superset match of want (nil want matches any), merged across
// every matching child: bucket counts are summed bound-by-bound. The
// bool is false when no child matched. Merging requires every matching
// child to share one bound set — true by construction, since a family's
// bounds are fixed by its first registration.
func (s *Snapshot) Histogram(name string, want map[string]string) (HistogramSnapshot, bool) {
	var out HistogramSnapshot
	found := false
	for _, h := range s.Histograms {
		if h.Name != name || !labelsMatch(h.Labels, want) {
			continue
		}
		if !found {
			out = HistogramSnapshot{Name: name, Labels: want}
			out.Bounds = append([]float64(nil), h.Bounds...)
			out.Counts = make([]uint64, len(h.Counts))
			found = true
		}
		if len(h.Counts) != len(out.Counts) {
			continue // different bound set: cannot merge, skip
		}
		for i, c := range h.Counts {
			out.Counts[i] += c
		}
		out.Count += h.Count
		out.Sum += h.Sum
	}
	return out, found
}

// CounterSum sums every counter child of name whose labels are a
// superset match of want (nil want matches all children).
func (s *Snapshot) CounterSum(name string, want map[string]string) uint64 {
	var sum uint64
	for _, c := range s.Counters {
		if c.Name == name && labelsMatch(c.Labels, want) {
			sum += c.Value
		}
	}
	return sum
}

// labelsMatch reports whether have contains every key=value of want.
func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// Mean is Sum/Count, 0 on an empty histogram.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile of the snapshotted distribution
// (see BucketQuantileOK for the honesty bit semantics).
func (h HistogramSnapshot) Quantile(q float64) (float64, bool) {
	uppers := append(append([]float64(nil), h.Bounds...), math.Inf(1))
	return BucketQuantileOK(uppers, h.CumulativeCounts(), q)
}

// Snapshot freezes every metric family into the machine-readable form,
// sorted by name then label signature (deterministic output). Bucket
// counts are read per-bucket atomically; a histogram observed mid-
// snapshot may show the new sample in its buckets but not yet in Sum
// (or vice versa) — snapshot a quiescent registry when exactness
// matters, e.g. after a measurement pass completes.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{
		Histograms: []HistogramSnapshot{},
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type labelled struct {
		labels []Label
		ch     *child
	}
	fams := make(map[string][]labelled, len(names))
	kinds := make(map[string]metricKind, len(names))
	for _, name := range names {
		f := r.families[name]
		kinds[name] = f.kind
		for _, sig := range f.order {
			ch := f.children[sig]
			fams[name] = append(fams[name], labelled{labels: ch.labels, ch: ch})
		}
	}
	r.mu.Unlock()

	for _, name := range names {
		for _, lc := range fams[name] {
			labels := labelMap(lc.labels)
			switch kinds[name] {
			case kindCounter:
				snap.Counters = append(snap.Counters, CounterSnapshot{
					Name: name, Labels: labels, Value: lc.ch.c.Value(),
				})
			case kindGauge:
				snap.Gauges = append(snap.Gauges, GaugeSnapshot{
					Name: name, Labels: labels, Value: lc.ch.g.Value(),
				})
			case kindHistogram:
				h := lc.ch.h
				hs := HistogramSnapshot{
					Name:   name,
					Labels: labels,
					Bounds: append([]float64(nil), h.bounds...),
					Counts: make([]uint64, len(h.bounds)+1),
					Count:  h.Count(),
					Sum:    h.Sum(),
				}
				var finite uint64
				for i := range h.bounds {
					c := h.buckets[i].Load()
					hs.Counts[i] = c
					finite += c
				}
				// The +Inf bucket is implicit in the live histogram;
				// reconstruct it from the total. Clamp against a torn
				// concurrent observe (count incremented before its bucket).
				if hs.Count > finite {
					hs.Counts[len(hs.Counts)-1] = hs.Count - finite
				}
				snap.Histograms = append(snap.Histograms, hs)
			}
		}
	}
	return snap
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// SnapshotJSON writes the machine-readable snapshot as indented JSON —
// the /histz payload.
func (r *Registry) SnapshotJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// DecodeSnapshot reads a snapshot written by SnapshotJSON, validating
// the histogram shape invariants (counts length, count consistency).
func DecodeSnapshot(rd io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(rd).Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	for _, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return nil, fmt.Errorf("obs: snapshot histogram %q has %d counts for %d bounds (want bounds+1)",
				h.Name, len(h.Counts), len(h.Bounds))
		}
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		if sum != h.Count {
			return nil, fmt.Errorf("obs: snapshot histogram %q bucket counts sum to %d, count says %d",
				h.Name, sum, h.Count)
		}
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return nil, fmt.Errorf("obs: snapshot histogram %q bounds not ascending at %d", h.Name, i)
			}
		}
	}
	return &s, nil
}
