// Package tinygarble reimplements, in Go, the software baseline of
// Table 2: a TinyGarble-style sequential garbled-circuit framework
// ([16], IEEE S&P 2015). Like the original it is netlist-driven — the
// MAC is a compact sequential netlist with the accumulator in DFF
// state, garbled once per round with fresh labels — and runs on one
// CPU core.
//
// The package provides two things:
//
//   - A live software garbler whose throughput is measured on the host
//     running the benchmarks (the "measured" column of the Table 2
//     reproduction).
//   - An ASAP dependency-scheduling model that counts the cycles a
//     netlist-driven engine with E parallel encryption units would
//     need, exposing the pipeline stalls the paper attributes to
//     netlist execution ("The throughput of [16] will go down while
//     garbling a complete netlist due to pipeline stalls caused by
//     dependency issues", §5.4). MAXelerator's FSM schedule is the
//     stall-free counterpoint.
package tinygarble

import (
	"fmt"
	"time"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
)

// Framework is a single-core software sequential-GC engine.
type Framework struct {
	params  gc.Params
	width   int
	ckt     *circuit.Circuit
	garbler *gc.Garbler
}

// New builds a software framework for bit-width b. The MAC netlist
// uses the serial multiplier, matching TinyGarble's multiplication
// structure (§4: "the implementation of the multiplication operation
// in [16] follows a serial nature").
func New(width int) (*Framework, error) {
	if width < 2 || width%2 != 0 {
		return nil, fmt.Errorf("tinygarble: bit-width %d must be an even integer ≥ 2", width)
	}
	ckt, err := circuit.MAC(circuit.MACConfig{
		Width:            width,
		AccWidth:         2 * width,
		SerialMultiplier: true,
	})
	if err != nil {
		return nil, err
	}
	params := gc.DefaultParams()
	g, err := gc.NewGarbler(params, label.MustSystemDRBG())
	if err != nil {
		return nil, err
	}
	return &Framework{params: params, width: width, ckt: ckt, garbler: g}, nil
}

// Width returns the operand bit-width.
func (f *Framework) Width() int { return f.width }

// Circuit returns the MAC netlist being garbled.
func (f *Framework) Circuit() *circuit.Circuit { return f.ckt }

// Params returns the garbling parameters.
func (f *Framework) Params() gc.Params { return f.params }

// Stats reports a measured garbling run.
type Stats struct {
	// MACs is the number of MAC rounds garbled.
	MACs int
	// Elapsed is the wall-clock garbling time on this host.
	Elapsed time.Duration
	// TableBytes is the garbled-table volume produced.
	TableBytes uint64
	// Tables is the garbled-table count.
	Tables uint64
}

// TimePerMAC is the measured per-round latency.
func (s Stats) TimePerMAC() time.Duration {
	if s.MACs == 0 {
		return 0
	}
	return s.Elapsed / time.Duration(s.MACs)
}

// ThroughputMACsPerSec is the measured single-core throughput.
func (s Stats) ThroughputMACsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.MACs) / s.Elapsed.Seconds()
}

// GarbleMACRounds garbles n sequential MAC rounds (one dot-product
// element chain) and measures wall-clock cost. The garbler input
// cycles through a deterministic pattern; input values do not affect
// garbling cost.
func (f *Framework) GarbleMACRounds(n int) (Stats, error) {
	if n <= 0 {
		return Stats{}, fmt.Errorf("tinygarble: round count %d must be positive", n)
	}
	var st Stats
	var state0 []label.Label
	var tweak uint64
	mask := int64(1)<<f.width - 1
	start := time.Now()
	for round := 0; round < n; round++ {
		gb, err := f.garbler.Garble(f.ckt, gc.GarbleOptions{
			GarblerInputs: circuit.Int64ToBits(int64(round)&mask, f.width),
			State0:        state0,
			TweakBase:     tweak,
		})
		if err != nil {
			return Stats{}, fmt.Errorf("tinygarble: round %d: %w", round, err)
		}
		state0 = gb.StateOut0
		tweak = gb.NextTweak
		st.Tables += uint64(len(gb.Material.Tables))
		st.TableBytes += uint64(gb.Material.CiphertextBytes())
	}
	st.Elapsed = time.Since(start)
	st.MACs = n
	return st, nil
}

// ASAPCycles models a netlist-driven engine with `units` parallel
// encryption units garbling circuit c as fast as dependencies allow:
// ANDs are levelled by AND-depth and each level of nₗ gates costs
// ⌈nₗ/units⌉ cycles (XORs are free). The result is the engine's
// cycle count per garbling; stalls are the excess over the ideal
// ⌈ANDs/units⌉.
func ASAPCycles(c *circuit.Circuit, units int) (cycles, stalls int, err error) {
	if units <= 0 {
		return 0, 0, fmt.Errorf("tinygarble: unit count %d must be positive", units)
	}
	depth := make([]int, c.NWires)
	levels := make(map[int]int)
	ands := 0
	for _, g := range c.Gates {
		d := depth[g.A]
		if depth[g.B] > d {
			d = depth[g.B]
		}
		if g.Op == circuit.AND {
			d++
			levels[d]++
			ands++
		}
		depth[g.Out] = d
	}
	for _, n := range levels {
		cycles += (n + units - 1) / units
	}
	ideal := (ands + units - 1) / units
	return cycles, cycles - ideal, nil
}

// EvalStats reports a measured evaluation run (the client-side cost of
// the system: the evaluator is always software, even with the
// accelerator garbling).
type EvalStats struct {
	// MACs is the number of MAC rounds evaluated.
	MACs int
	// Elapsed is the wall-clock evaluation time on this host.
	Elapsed time.Duration
}

// TimePerMAC is the measured per-round evaluation latency.
func (s EvalStats) TimePerMAC() time.Duration {
	if s.MACs == 0 {
		return 0
	}
	return s.Elapsed / time.Duration(s.MACs)
}

// ThroughputMACsPerSec is the measured single-core evaluation
// throughput.
func (s EvalStats) ThroughputMACsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.MACs) / s.Elapsed.Seconds()
}

// EvaluateMACRounds garbles and then evaluates n sequential MAC
// rounds, timing only the evaluation (half-gate evaluation costs 2
// hash calls per AND versus 4 when garbling, so the client runs
// roughly twice as fast as a software garbler).
func (f *Framework) EvaluateMACRounds(n int) (EvalStats, error) {
	if n <= 0 {
		return EvalStats{}, fmt.Errorf("tinygarble: round count %d must be positive", n)
	}
	type round struct {
		material *gc.Material
		active   []label.Label
	}
	rounds := make([]round, 0, n)
	var state0 []label.Label
	var tweak uint64
	mask := int64(1)<<f.width - 1
	for r := 0; r < n; r++ {
		gb, err := f.garbler.Garble(f.ckt, gc.GarbleOptions{
			GarblerInputs: circuit.Int64ToBits(int64(r)&mask, f.width),
			State0:        state0,
			TweakBase:     tweak,
		})
		if err != nil {
			return EvalStats{}, err
		}
		state0 = gb.StateOut0
		tweak = gb.NextTweak
		aBits := circuit.Int64ToBits(int64(r+1)&mask, f.width)
		active := make([]label.Label, len(aBits))
		for i, v := range aBits {
			active[i] = gb.EvalPairs[i].Get(v)
		}
		rounds = append(rounds, round{material: &gb.Material, active: active})
	}

	var stateAct []label.Label
	start := time.Now()
	for r := range rounds {
		res, err := gc.Evaluate(f.params, f.ckt, rounds[r].material, rounds[r].active, stateAct)
		if err != nil {
			return EvalStats{}, fmt.Errorf("tinygarble: evaluating round %d: %w", r, err)
		}
		stateAct = res.StateActive
	}
	return EvalStats{MACs: n, Elapsed: time.Since(start)}, nil
}
