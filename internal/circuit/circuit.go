// Package circuit provides the Boolean netlist intermediate
// representation used throughout the MAXelerator reproduction, together
// with a builder for the GC-optimised arithmetic blocks the paper
// relies on: the one-AND-per-bit ripple adder of TinyGarble, the
// tree-based multiplier of Fig. 2, multiplexers, 2's-complement
// conditioning for signed inputs, and comparison logic.
//
// Circuits consist solely of 2-input XOR and AND gates plus free
// inversions, matching the cost model of free-XOR garbling where XOR
// gates cost nothing and every AND gate costs one garbled table.
package circuit

import (
	"errors"
	"fmt"
)

// Op is a gate operation.
type Op uint8

// Gate operations. NOT is represented as XOR with the constant-one
// wire, so only two ops exist in built netlists.
const (
	// XOR is a free gate under free-XOR garbling.
	XOR Op = iota
	// AND costs one garbled table (two ciphertexts with half gates).
	AND
)

// String renders the op mnemonic.
func (o Op) String() string {
	switch o {
	case XOR:
		return "XOR"
	case AND:
		return "AND"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Gate is a 2-input 1-output logic gate. A and B index input wires and
// Out indexes the gate's output wire.
type Gate struct {
	Op   Op
	A, B int
	Out  int
}

// Reserved wire indices. Wire 0 carries constant FALSE and wire 1
// constant TRUE; garbler inputs, evaluator inputs and gate outputs
// follow.
const (
	// Const0 is the wire carrying constant logical 0.
	Const0 = 0
	// Const1 is the wire carrying constant logical 1.
	Const1 = 1
	// FirstInput is the index of the first party input wire.
	FirstInput = 2
)

// Circuit is an immutable netlist, optionally sequential. A sequential
// circuit (NState > 0) follows TinyGarble's model: state wires behave
// like D flip-flop outputs whose values at round r+1 are the StateOuts
// of round r; at round 0 they carry logical 0.
type Circuit struct {
	// NGarbler and NEvaluator are the party input bit counts. Garbler
	// inputs occupy wires [FirstInput, FirstInput+NGarbler); evaluator
	// inputs follow immediately after.
	NGarbler, NEvaluator int
	// NState is the number of sequential state (DFF) wires, placed
	// immediately after the evaluator inputs.
	NState int
	// Gates in topological order: every gate's inputs are constants,
	// party inputs, state wires, or outputs of earlier gates.
	Gates []Gate
	// Outputs lists the circuit output wires in order.
	Outputs []int
	// StateOuts lists, for each state wire in order, the wire feeding
	// it for the next round. len(StateOuts) == NState.
	StateOuts []int
	// NWires is the total wire count (constants + inputs + state +
	// gates).
	NWires int
}

// GarblerInputWire returns the wire index of garbler input bit i.
func (c *Circuit) GarblerInputWire(i int) int { return FirstInput + i }

// EvaluatorInputWire returns the wire index of evaluator input bit i.
func (c *Circuit) EvaluatorInputWire(i int) int { return FirstInput + c.NGarbler + i }

// StateWire returns the wire index of state bit i.
func (c *Circuit) StateWire(i int) int { return FirstInput + c.NGarbler + c.NEvaluator + i }

// Stats summarises garbling-relevant netlist metrics.
type Stats struct {
	// ANDs is the non-free gate count: the number of garbled tables.
	ANDs int
	// XORs is the free gate count.
	XORs int
	// ANDDepth is the longest chain of AND gates from any input to any
	// output — the sequential lower bound on garbling rounds when only
	// dependency order constrains scheduling.
	ANDDepth int
	// Wires is the total wire count.
	Wires int
}

// Stats computes netlist statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{Wires: c.NWires}
	depth := make([]int, c.NWires)
	for _, g := range c.Gates {
		d := depth[g.A]
		if depth[g.B] > d {
			d = depth[g.B]
		}
		switch g.Op {
		case AND:
			s.ANDs++
			d++
		case XOR:
			s.XORs++
		}
		depth[g.Out] = d
		if d > s.ANDDepth {
			s.ANDDepth = d
		}
	}
	return s
}

// Validate checks structural well-formedness: topological gate order,
// in-range wire indices, single assignment per wire, and reachable
// outputs.
func (c *Circuit) Validate() error {
	if c.NGarbler < 0 || c.NEvaluator < 0 || c.NState < 0 {
		return errors.New("circuit: negative input count")
	}
	if len(c.StateOuts) != c.NState {
		return fmt.Errorf("circuit: %d state wires but %d state outputs", c.NState, len(c.StateOuts))
	}
	defined := make([]bool, c.NWires)
	span := FirstInput + c.NGarbler + c.NEvaluator + c.NState
	if c.NWires < span {
		return fmt.Errorf("circuit: NWires %d below input span %d", c.NWires, span)
	}
	for i := 0; i < span; i++ {
		defined[i] = true
	}
	for i, g := range c.Gates {
		if g.Op != XOR && g.Op != AND {
			return fmt.Errorf("circuit: gate %d has unknown op %d", i, g.Op)
		}
		if g.A < 0 || g.A >= c.NWires || g.B < 0 || g.B >= c.NWires {
			return fmt.Errorf("circuit: gate %d reads out-of-range wire", i)
		}
		if !defined[g.A] || !defined[g.B] {
			return fmt.Errorf("circuit: gate %d reads undefined wire (not topological)", i)
		}
		if g.Out < 0 || g.Out >= c.NWires {
			return fmt.Errorf("circuit: gate %d writes out-of-range wire %d", i, g.Out)
		}
		if defined[g.Out] {
			return fmt.Errorf("circuit: gate %d redefines wire %d", i, g.Out)
		}
		defined[g.Out] = true
	}
	for i, w := range c.Outputs {
		if w < 0 || w >= c.NWires || !defined[w] {
			return fmt.Errorf("circuit: output %d references undefined wire %d", i, w)
		}
	}
	for i, w := range c.StateOuts {
		if w < 0 || w >= c.NWires || !defined[w] {
			return fmt.Errorf("circuit: state output %d references undefined wire %d", i, w)
		}
	}
	return nil
}

// Eval computes the plaintext outputs of a combinational circuit for
// the given party inputs. It is the correctness reference the garbled
// execution is tested against. For sequential circuits use EvalRound.
func (c *Circuit) Eval(garbler, evaluator []bool) ([]bool, error) {
	if c.NState != 0 {
		return nil, fmt.Errorf("circuit: Eval on sequential circuit with %d state wires; use EvalRound", c.NState)
	}
	out, _, err := c.EvalRound(garbler, evaluator, nil)
	return out, err
}

// EvalRound computes one round of a (possibly sequential) circuit:
// given party inputs and the current state values it returns the
// outputs and the next state. A nil state is treated as all zeros
// (round 0).
func (c *Circuit) EvalRound(garbler, evaluator, state []bool) (outputs, nextState []bool, err error) {
	if len(garbler) != c.NGarbler {
		return nil, nil, fmt.Errorf("circuit: got %d garbler bits, want %d", len(garbler), c.NGarbler)
	}
	if len(evaluator) != c.NEvaluator {
		return nil, nil, fmt.Errorf("circuit: got %d evaluator bits, want %d", len(evaluator), c.NEvaluator)
	}
	if state == nil {
		state = make([]bool, c.NState)
	}
	if len(state) != c.NState {
		return nil, nil, fmt.Errorf("circuit: got %d state bits, want %d", len(state), c.NState)
	}
	w := make([]bool, c.NWires)
	w[Const1] = true
	copy(w[FirstInput:], garbler)
	copy(w[FirstInput+c.NGarbler:], evaluator)
	copy(w[FirstInput+c.NGarbler+c.NEvaluator:], state)
	for _, g := range c.Gates {
		switch g.Op {
		case XOR:
			w[g.Out] = w[g.A] != w[g.B]
		case AND:
			w[g.Out] = w[g.A] && w[g.B]
		}
	}
	outputs = make([]bool, len(c.Outputs))
	for i, ow := range c.Outputs {
		outputs[i] = w[ow]
	}
	nextState = make([]bool, c.NState)
	for i, sw := range c.StateOuts {
		nextState[i] = w[sw]
	}
	return outputs, nextState, nil
}
