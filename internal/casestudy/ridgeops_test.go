package casestudy

import (
	"testing"

	"maxelerator/internal/paper"
)

func TestRidgeOpsValidation(t *testing.T) {
	if _, err := RidgeOps(1, PaperSpeedup32()); err == nil {
		t.Fatal("d=1 accepted")
	}
	if _, err := RidgeOps(8, MACSpeedup{Width: 32}); err == nil {
		t.Fatal("zero latencies accepted")
	}
}

func TestRidgeOpsCounts(t *testing.T) {
	r, err := RidgeOps(8, PaperSpeedup32())
	if err != nil {
		t.Fatal(err)
	}
	if r.MACs != 8*8*8/6+64 {
		t.Fatalf("MACs = %d", r.MACs)
	}
	if r.Divs != 8*7/2+16 {
		t.Fatalf("Divs = %d", r.Divs)
	}
	if r.Sqrts != 8 {
		t.Fatalf("Sqrts = %d", r.Sqrts)
	}
	if r.MACTables == 0 || r.DivTables == 0 || r.SqrtTables == 0 {
		t.Fatalf("gate counts missing: %+v", r)
	}
}

func TestRidgeOpsImprovementGrowsWithDimension(t *testing.T) {
	// Table 3's structural claim derived from gate counts alone: the
	// O(d³) MAC share grows with d, so accelerating MACs helps more on
	// higher-dimensional datasets.
	sw := PaperSpeedup32()
	prev := 0.0
	prevShare := 0.0
	for _, d := range []int{8, 9, 11, 12, 14, 20} {
		r, err := RidgeOps(d, sw)
		if err != nil {
			t.Fatal(err)
		}
		if r.Improvement <= prev {
			t.Fatalf("d=%d improvement %.2f not above d-1's %.2f", d, r.Improvement, prev)
		}
		if r.MACShare <= prevShare {
			t.Fatalf("d=%d MAC share %.4f not above previous %.4f", d, r.MACShare, prevShare)
		}
		prev = r.Improvement
		prevShare = r.MACShare
	}
}

func TestRidgeOpsSharesAreLarge(t *testing.T) {
	// Even at the smallest Table 3 dimension the MAC work dominates —
	// the premise of accelerating only the MAC.
	r, err := RidgeOps(8, PaperSpeedup32())
	if err != nil {
		t.Fatal(err)
	}
	if r.MACShare < 0.5 {
		t.Fatalf("d=8 MAC share = %.3f, want > 0.5", r.MACShare)
	}
	if r.Improvement < 2 {
		t.Fatalf("d=8 improvement = %.2f, implausibly low", r.Improvement)
	}
}

func TestRidgeOpsSweepCoversTable3Dims(t *testing.T) {
	dims := make([]int, 0, len(paper.Table3))
	for _, ds := range paper.Table3 {
		dims = append(dims, ds.D)
	}
	rows, err := RidgeOpsSweep(dims, PaperSpeedup32())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(dims) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.D != dims[i] {
			t.Fatalf("row %d dimension %d", i, r.D)
		}
		if r.AcceleratedTime >= r.SoftwareTime {
			t.Fatalf("d=%d: no acceleration (%v vs %v)", r.D, r.AcceleratedTime, r.SoftwareTime)
		}
	}
}
