package protocol

import (
	"fmt"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/ot"
	"maxelerator/internal/seqgc"
	"maxelerator/internal/serial"
	"maxelerator/internal/wire"
)

// Serial-mode sessions: the bit-serial datapath streamed over the
// wire, one garbled *stage* at a time. This is §3's memory-constrained
// client taken to the architecture's natural granularity — the
// evaluator holds the labels of exactly one stage (a single input bit
// plus carried state labels) instead of a full round, at the cost of
// one OT round trip per stage.

// serialHello extends the handshake for serial sessions.
type serialHello struct {
	Width        int
	Signed       bool
	Scheme       string
	Cols         int
	StagesPerMAC int
}

// ServeDotProductSerial runs one serial-mode dot-product session with
// the server-held vector x.
func (s *Server) ServeDotProductSerial(conn wire.Conn, x []int64) (out int64, st Stats, err error) {
	ss := s.beginSession("serial", conn, nil)
	defer ss.finish(&err)

	sim, err := maxsim.New(s.cfg)
	if err != nil {
		return 0, Stats{}, err
	}
	if len(x) == 0 {
		return 0, Stats{}, fmt.Errorf("protocol: empty server vector")
	}
	cfg := sim.Config()

	var ckt *circuit.Circuit
	var layout serial.Layout
	if cfg.Signed {
		ckt, layout, err = serial.MACSigned(cfg.Width)
	} else {
		ckt, layout, err = serial.MAC(cfg.Width)
	}
	if err != nil {
		return 0, Stats{}, err
	}

	h := serialHello{
		Width: cfg.Width, Signed: cfg.Signed,
		Scheme: cfg.Params.Scheme.Name(),
		Cols:   len(x), StagesPerMAC: layout.StagesPerMAC,
	}
	ss.tr.SetAttr("cols", fmt.Sprint(len(x)))
	ss.tr.SetAttr("stages_per_mac", fmt.Sprint(layout.StagesPerMAC))
	hs := ss.tr.StartSpan("handshake")
	err = sendGob(conn, h)
	hs.End()
	if err != nil {
		return 0, Stats{}, err
	}
	otSpan := ss.tr.StartSpan("ot_setup")
	sender, err := ot.NewExtensionSender(conn, cfg.Rand)
	ss.observeOTSetup(otSpan.End())
	if err != nil {
		return 0, Stats{}, err
	}
	gs, err := seqgc.NewGarblerSession(cfg.Params, cfg.Rand, ckt)
	if err != nil {
		return 0, Stats{}, err
	}

	rounds := ss.tr.StartSpan("rounds")
	var agg Stats
	for round, xi := range x {
		if err := checkRange(xi, cfg.Width, cfg.Signed); err != nil {
			return 0, Stats{}, fmt.Errorf("protocol: round %d: %w", round, err)
		}
		xBits := circuit.Int64ToBits(xi, cfg.Width)
		for stage := 0; stage < layout.StagesPerMAC; stage++ {
			g := xBits
			if cfg.Signed {
				isLast, vj, corr, notFirst := layout.SignedStageInputs(stage)
				g = append(append([]bool{}, xBits...), isLast, vj, corr, notFirst)
			}
			gb, err := gs.NextRoundWithEvalLabels(g, nil)
			if err != nil {
				return 0, Stats{}, fmt.Errorf("protocol: round %d stage %d: %w", round, stage, err)
			}
			if err := sendMaterial(conn, &gb.Material); err != nil {
				return 0, Stats{}, err
			}
			if err := ot.SendLabels(sender, gb.EvalPairs); err != nil {
				return 0, Stats{}, err
			}
			agg.TablesGarbled += uint64(len(gb.Material.Tables))
			agg.TableBytes += uint64(gb.Material.CiphertextBytes())
			agg.Stages++
		}
		agg.MACs++
	}
	rounds.End()
	agg.TablesScheduled = agg.TablesGarbled
	agg.Cycles = agg.Stages * 3
	agg.ModeledTime = cfg.Device.CyclesToDuration(agg.Cycles)
	agg.PCIeTime = cfg.PCIe.TransferTime(int(agg.TableBytes))
	agg.CoreUtilization = 1
	// Hand-assembled Stats: publish them explicitly (no
	// GarbleDotProduct on this path).
	sim.RecordStats(&agg)

	decode := ss.tr.StartSpan("decode")
	defer decode.End()
	var res result
	if err := recvGob(conn, &res); err != nil {
		return 0, Stats{}, fmt.Errorf("protocol: reading client result: %w", err)
	}
	if len(res.Values) != 1 {
		return 0, Stats{}, fmt.Errorf("protocol: client reported %d values, want 1", len(res.Values))
	}
	return res.Values[0], agg, nil
}

// RunSerial executes the evaluator side of a serial-mode session with
// the client vector y: one OT'd bit and one evaluated stage at a time.
func (c *Client) RunSerial(conn wire.Conn, y []int64) (int64, error) {
	var h serialHello
	if err := recvGob(conn, &h); err != nil {
		return 0, fmt.Errorf("protocol: reading serial handshake: %w", err)
	}
	if h.Cols != len(y) {
		return 0, fmt.Errorf("protocol: server expects %d elements, client holds %d", h.Cols, len(y))
	}
	scheme, err := schemeByName(h.Scheme)
	if err != nil {
		return 0, err
	}
	params := gc.DefaultParams()
	params.Scheme = scheme

	var ckt *circuit.Circuit
	var layout serial.Layout
	if h.Signed {
		ckt, layout, err = serial.MACSigned(h.Width)
	} else {
		ckt, layout, err = serial.MAC(h.Width)
	}
	if err != nil {
		return 0, err
	}
	if layout.StagesPerMAC != h.StagesPerMAC {
		return 0, fmt.Errorf("protocol: stage count mismatch: server %d, local %d", h.StagesPerMAC, layout.StagesPerMAC)
	}

	receiver, err := ot.NewExtensionReceiver(conn, c.rnd)
	if err != nil {
		return 0, err
	}
	es, err := seqgc.NewEvaluatorSession(params, ckt)
	if err != nil {
		return 0, err
	}

	mask := uint64(1)<<uint(h.Width) - 1
	var accBits []bool
	for round, yi := range y {
		if err := checkRange(yi, h.Width, h.Signed); err != nil {
			return 0, fmt.Errorf("protocol: element %d: %w", round, err)
		}
		accBits = accBits[:0]
		for stage := 0; stage < layout.StagesPerMAC; stage++ {
			m, err := recvMaterial(conn)
			if err != nil {
				return 0, fmt.Errorf("protocol: round %d stage %d material: %w", round, stage, err)
			}
			bits := layout.StageInputs(uint64(yi)&mask, stage)
			active, err := ot.ReceiveLabels(receiver, bits)
			if err != nil {
				return 0, fmt.Errorf("protocol: round %d stage %d OT: %w", round, stage, err)
			}
			res, err := es.NextRound(m, active)
			if err != nil {
				return 0, fmt.Errorf("protocol: round %d stage %d evaluate: %w", round, stage, err)
			}
			accBits = append(accBits, res.Outputs[0])
		}
	}
	var out int64
	if h.Signed {
		out = circuit.BitsToInt64(accBits[:2*h.Width])
	} else {
		out = int64(circuit.BitsToUint64(accBits))
	}
	if err := sendGob(conn, result{Values: []int64{out}}); err != nil {
		return 0, err
	}
	return out, nil
}
