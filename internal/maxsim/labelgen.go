package maxsim

import (
	"fmt"

	"maxelerator/internal/label"
	"maxelerator/internal/rng"
)

// LabelGenerator models the §5.2 label generator: an array of
// k·(b/2) ring-oscillator RNGs sized for the worst-case demand of one
// fresh k-bit label per segment-1 core per cycle, with the FSM gating
// oscillators off when the actual demand is lower ("The FSM ... fully
// or partially turns off the operation of the RNGs to conserve
// energy").
//
// The generator draws real bits from the simulated Wold–Tan array of
// package rng, so its output stream is subject to the same statistical
// battery as the hardware's. It is a hardware model: protocol-grade
// label entropy elsewhere comes from crypto/rand.
type LabelGenerator struct {
	width int
	array *rng.RORNG

	// bitsDrawn counts entropy actually consumed.
	bitsDrawn uint64
	// cycles counts elapsed accelerator cycles accounted so far.
	cycles uint64
}

// NewLabelGenerator builds the generator for bit-width b, seeding the
// oscillator jitter model deterministically from the seed.
func NewLabelGenerator(width int, seed int64) (*LabelGenerator, error) {
	if width < 4 || width%2 != 0 {
		return nil, fmt.Errorf("maxsim: label generator width %d must be an even integer ≥ 4", width)
	}
	array, err := rng.New(rng.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &LabelGenerator{width: width, array: array}, nil
}

// CapacityBitsPerCycle is the provisioned worst case: k·(b/2) bits per
// clock cycle.
func (g *LabelGenerator) CapacityBitsPerCycle() uint64 {
	return uint64(label.Bits) * uint64(g.width) / 2
}

// DrawLabel draws one fresh wire label from the oscillator array.
func (g *LabelGenerator) DrawLabel() (label.Label, error) {
	l, err := label.Random(g.array)
	if err != nil {
		return label.Zero, err
	}
	g.bitsDrawn += label.Bits
	return l, nil
}

// DrawLabels draws n fresh labels.
func (g *LabelGenerator) DrawLabels(n int) ([]label.Label, error) {
	out := make([]label.Label, n)
	for i := range out {
		l, err := g.DrawLabel()
		if err != nil {
			return nil, err
		}
		out[i] = l
	}
	return out, nil
}

// AccountCycles records that the accelerator advanced by the given
// clock cycles; subsequent gating statistics relate entropy drawn to
// capacity over these cycles.
func (g *LabelGenerator) AccountCycles(cycles uint64) { g.cycles += cycles }

// Stats summarises the generator's activity.
type LabelGenStats struct {
	// BitsDrawn is the entropy consumed.
	BitsDrawn uint64
	// CapacityBits is what the full array could have produced over the
	// accounted cycles.
	CapacityBits uint64
	// GatedFraction is the fraction of RNG capacity the FSM switched
	// off: 1 − drawn/capacity.
	GatedFraction float64
	// ActiveRNGsAverage is the average number of k-bit RNG lanes that
	// had to run per cycle (out of b/2).
	ActiveRNGsAverage float64
}

// Stats computes the gating statistics over the accounted cycles.
func (g *LabelGenerator) Stats() LabelGenStats {
	st := LabelGenStats{BitsDrawn: g.bitsDrawn}
	st.CapacityBits = g.CapacityBitsPerCycle() * g.cycles
	if st.CapacityBits > 0 {
		used := float64(g.bitsDrawn) / float64(st.CapacityBits)
		if used > 1 {
			used = 1
		}
		st.GatedFraction = 1 - used
		st.ActiveRNGsAverage = used * float64(g.width) / 2
	}
	return st
}

// SelfTest runs the statistical battery over a fresh stream from the
// oscillator array, as the paper did for its hardware RNG.
func (g *LabelGenerator) SelfTest(bits int) []rng.TestResult {
	return rng.Battery(g.array.Bits(bits))
}
