package ot

import (
	"fmt"

	"maxelerator/internal/label"
)

// Correlated OT (C-OT). Under free-XOR garbling every evaluator-input
// label pair is correlated as X¹ = X⁰ ⊕ Δ, so the sender need not pick
// both messages freely: the IKNP row already gives the receiver
// H(t_j) = H(q_j ⊕ r_j·s), and the sender can *define*
//
//	X⁰_j = H(q_j)           (fresh pseudorandom FALSE label)
//	X¹_j = X⁰_j ⊕ Δ
//
// and transmit a single correction ciphertext
//
//	u_j = H(q_j ⊕ s) ⊕ X⁰_j ⊕ Δ
//
// from which the receiver recovers X⁰_j directly (r_j = 0) or as
// u_j ⊕ H(t_j) (r_j = 1) — exactly X^{r_j}_j either way. One
// ciphertext per transfer instead of two, and the garbler gets its
// FALSE labels chosen by the OT, which it then uses as the input-wire
// labels of the round (Asharov–Lindell–Schneider–Zohner style).

// SendCorrelatedLabels runs the sender side of a correlated batch: it
// returns the FALSE label of each transfer, whose TRUE counterpart is
// implicitly X⁰ ⊕ delta.
func (es *ExtensionSender) SendCorrelatedLabels(n int, delta label.Delta) ([]label.Label, error) {
	if n == 0 {
		return nil, nil
	}
	m := n
	mBytes := (m + 7) / 8

	u, err := es.conn.RecvMsg()
	if err != nil {
		return nil, fmt.Errorf("ot: correlated sender reading u matrix: %w", err)
	}
	if len(u) != Kappa*mBytes {
		return nil, fmt.Errorf("ot: correlated sender got %d u bytes, want %d", len(u), Kappa*mBytes)
	}
	q := make([][]byte, Kappa)
	for i := 0; i < Kappa; i++ {
		col := nextPad(es.columns[i], mBytes)
		if es.s[i] {
			ui := u[i*mBytes : (i+1)*mBytes]
			for k := range col {
				col[k] ^= ui[k]
			}
		}
		q[i] = col
	}

	out := make([]label.Label, m)
	cts := make([]byte, 0, 16*m)
	d := Message(delta.Label())
	for j := 0; j < m; j++ {
		var row Message
		for i := 0; i < Kappa; i++ {
			if q[i][j/8]>>(uint(j)%8)&1 == 1 {
				row[i/8] |= 1 << (uint(i) % 8)
			}
		}
		idx := es.index + uint64(j)
		x0 := rowHash(idx, row)
		corr := xorMsg(xorMsg(rowHash(idx, xorMsg(row, es.sPacked)), x0), d)
		out[j] = label.Label(x0)
		cts = append(cts, corr[:]...)
	}
	es.index += uint64(m)
	if err := es.conn.SendMsg(cts); err != nil {
		return nil, fmt.Errorf("ot: correlated sender shipping corrections: %w", err)
	}
	return out, nil
}

// ReceiveCorrelatedLabels runs the receiver side: it returns the
// active label X^{choice} of each transfer.
func (er *ExtensionReceiver) ReceiveCorrelatedLabels(choices []bool) ([]label.Label, error) {
	m := len(choices)
	if m == 0 {
		return nil, nil
	}
	mBytes := (m + 7) / 8

	r := make([]byte, mBytes)
	for j, c := range choices {
		if c {
			r[j/8] |= 1 << (uint(j) % 8)
		}
	}
	t := make([][]byte, Kappa)
	u := make([]byte, 0, Kappa*mBytes)
	for i := 0; i < Kappa; i++ {
		t[i] = nextPad(er.col0[i], mBytes)
		pad1 := nextPad(er.col1[i], mBytes)
		ui := make([]byte, mBytes)
		for k := range ui {
			ui[k] = t[i][k] ^ pad1[k] ^ r[k]
		}
		u = append(u, ui...)
	}
	if err := er.conn.SendMsg(u); err != nil {
		return nil, fmt.Errorf("ot: correlated receiver sending u matrix: %w", err)
	}

	cts, err := er.conn.RecvMsg()
	if err != nil {
		return nil, fmt.Errorf("ot: correlated receiver reading corrections: %w", err)
	}
	if len(cts) != 16*m {
		return nil, fmt.Errorf("ot: correlated receiver got %d correction bytes, want %d", len(cts), 16*m)
	}
	out := make([]label.Label, m)
	for j := 0; j < m; j++ {
		var row Message
		for i := 0; i < Kappa; i++ {
			if t[i][j/8]>>(uint(j)%8)&1 == 1 {
				row[i/8] |= 1 << (uint(i) % 8)
			}
		}
		idx := er.index + uint64(j)
		h := rowHash(idx, row)
		if choices[j] {
			var corr Message
			copy(corr[:], cts[16*j:16*j+16])
			out[j] = label.Label(xorMsg(h, corr))
		} else {
			out[j] = label.Label(h)
		}
	}
	er.index += uint64(m)
	return out, nil
}
