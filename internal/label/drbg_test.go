package label

import (
	"bytes"
	"testing"
)

func TestDRBGDeterministicPerSeed(t *testing.T) {
	var seed [16]byte
	seed[3] = 7
	a, err := NewDRBG(seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDRBG(seed)
	if err != nil {
		t.Fatal(err)
	}
	bufA := make([]byte, 64)
	bufB := make([]byte, 64)
	if _, err := a.Read(bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("same seed produced different streams")
	}
}

func TestDRBGDifferentSeedsDiverge(t *testing.T) {
	var s1, s2 [16]byte
	s2[0] = 1
	a, _ := NewDRBG(s1)
	b, _ := NewDRBG(s2)
	bufA := make([]byte, 64)
	bufB := make([]byte, 64)
	a.Read(bufA)
	b.Read(bufB)
	if bytes.Equal(bufA, bufB) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDRBGStreamAdvances(t *testing.T) {
	d := MustSystemDRBG()
	a := make([]byte, 32)
	b := make([]byte, 32)
	d.Read(a)
	d.Read(b)
	if bytes.Equal(a, b) {
		t.Fatal("consecutive reads returned the same block")
	}
}

func TestDRBGOverwritesBuffer(t *testing.T) {
	// Read must not XOR into caller data: pre-filled buffers get pure
	// keystream, independent of prior contents.
	var seed [16]byte
	d1, _ := NewDRBG(seed)
	d2, _ := NewDRBG(seed)
	clean := make([]byte, 48)
	dirty := bytes.Repeat([]byte{0xAA}, 48)
	d1.Read(clean)
	d2.Read(dirty)
	if !bytes.Equal(clean, dirty) {
		t.Fatal("Read output depends on prior buffer contents")
	}
}

func TestDRBGAsLabelSource(t *testing.T) {
	d := MustSystemDRBG()
	l1, err := Random(d)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Random(d)
	if err != nil {
		t.Fatal(err)
	}
	if l1 == l2 {
		t.Fatal("DRBG repeated a label")
	}
	delta, err := NewDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Label().LSB() {
		t.Fatal("delta from DRBG lost its select bit")
	}
}
