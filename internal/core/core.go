// Package core is the MAXelerator library facade: it binds the
// cycle-accurate accelerator simulator, the garbling engine, the
// fixed-point format of the case studies and the matrix substrate into
// the privacy-preserving linear-algebra operations the paper
// accelerates — dot products, matrix-vector products and quadratic
// forms — with hardware-model statistics for every run.
//
// The operations in this package run both protocol parties in one
// process (garble, transfer labels in memory, evaluate), which is the
// form the unit tests, examples and benchmarks use. Package protocol
// runs the same computation between two real endpoints over a
// connection with oblivious transfer.
package core

import (
	"fmt"
	"sync"

	"maxelerator/internal/fixed"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/sched"
)

// Config parameterises an accelerator; it is the simulator
// configuration re-exported as the public entry point.
type Config = maxsim.Config

// Stats is the hardware-model accounting of a run.
type Stats = maxsim.Stats

// Accelerator is a configured MAXelerator instance.
type Accelerator struct {
	sim *maxsim.Simulator
}

// New builds an accelerator.
func New(cfg Config) (*Accelerator, error) {
	sim, err := maxsim.New(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.AccWidth > 64 && cfg.AccWidth != 0 {
		return nil, fmt.Errorf("core: accumulator width %d exceeds the 64-bit decode limit", cfg.AccWidth)
	}
	return &Accelerator{sim: sim}, nil
}

// Simulator exposes the underlying cycle-accurate simulator.
func (a *Accelerator) Simulator() *maxsim.Simulator { return a.sim }

// Schedule exposes the FSM schedule of one MAC unit.
func (a *Accelerator) Schedule() *sched.Schedule { return a.sim.Schedule() }

// Config returns the resolved configuration.
func (a *Accelerator) Config() Config { return a.sim.Config() }

// SecureDotProduct computes ⟨x, y⟩ under the GC protocol: the
// accelerator garbles the M-round sequential MAC for the server-held
// vector x, and an in-process evaluator holding y evaluates the
// garbled stream. It returns the decoded accumulator and the
// hardware-model statistics of the garbling run.
func (a *Accelerator) SecureDotProduct(x, y []int64) (int64, Stats, error) {
	if len(x) != len(y) {
		return 0, Stats{}, fmt.Errorf("core: vector lengths %d and %d differ", len(x), len(y))
	}
	run, err := a.sim.GarbleDotProduct(x)
	if err != nil {
		return 0, Stats{}, err
	}
	cfg := a.sim.Config()
	v, err := maxsim.EvaluateDotProduct(cfg.Params, a.sim.Circuit(), run, y, cfg.Width, cfg.Signed)
	if err != nil {
		return 0, Stats{}, err
	}
	return v, run.Stats, nil
}

// SecureMatVec computes A·y for a server-held matrix A (rows of raw
// fixed-point values) and a client vector y. Each output element is an
// independent sequential-MAC chain; timing aggregates over the
// configured MAC units.
func (a *Accelerator) SecureMatVec(A [][]int64, y []int64) ([]int64, Stats, error) {
	if len(A) == 0 {
		return nil, Stats{}, fmt.Errorf("core: empty matrix")
	}
	out := make([]int64, len(A))
	var agg Stats
	for i, row := range A {
		if len(row) != len(y) {
			return nil, Stats{}, fmt.Errorf("core: row %d length %d != vector length %d", i, len(row), len(y))
		}
		v, st, err := a.SecureDotProduct(row, y)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("core: row %d: %w", i, err)
		}
		out[i] = v
		agg.MACs += st.MACs
		agg.TablesGarbled += st.TablesGarbled
		agg.TablesScheduled += st.TablesScheduled
		agg.TableBytes += st.TableBytes
		agg.IdleSlots += st.IdleSlots
		agg.RNGBitsDrawn += st.RNGBitsDrawn
	}
	// Timing across rows parallelises over MAC units; delegate to the
	// matrix model for the critical-path cycles.
	mm, err := a.sim.MatMulStats(len(A), len(y), 1)
	if err != nil {
		return nil, Stats{}, err
	}
	agg.Cycles = mm.Cycles
	agg.Stages = mm.Stages
	agg.CoreUtilization = mm.CoreUtilization
	agg.ModeledTime = mm.ModeledTime
	agg.PCIeTime = a.sim.Config().PCIe.TransferTime(int(agg.TableBytes))
	return out, agg, nil
}

// SecureMatVecParallel computes A·y like SecureMatVec but garbles the
// independent row chains concurrently, one worker per configured MAC
// unit — the software mirror of the hardware's element-level
// parallelism (§6: "the throughput can be increased linearly by adding
// more GC cores to the FPGA"). Each worker owns a separate garbler
// (its own Δ), as separate MAC units would.
func (a *Accelerator) SecureMatVecParallel(A [][]int64, y []int64) ([]int64, Stats, error) {
	if len(A) == 0 {
		return nil, Stats{}, fmt.Errorf("core: empty matrix")
	}
	for i, row := range A {
		if len(row) != len(y) {
			return nil, Stats{}, fmt.Errorf("core: row %d length %d != vector length %d", i, len(row), len(y))
		}
	}
	workers := a.sim.Config().MACUnits
	if workers > len(A) {
		workers = len(A)
	}

	type rowResult struct {
		value int64
		stats Stats
		err   error
	}
	results := make([]rowResult, len(A))
	rowCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker accelerator: independent garbler state, as in
			// a physically separate MAC unit.
			cfg := a.sim.Config()
			cfg.MACUnits = 1
			unit, err := maxsim.New(cfg)
			if err != nil {
				for i := range rowCh {
					results[i].err = err
				}
				return
			}
			for i := range rowCh {
				run, err := unit.GarbleDotProduct(A[i])
				if err != nil {
					results[i].err = err
					continue
				}
				v, err := maxsim.EvaluateDotProduct(cfg.Params, unit.Circuit(), run, y, cfg.Width, cfg.Signed)
				results[i] = rowResult{value: v, stats: run.Stats, err: err}
			}
		}()
	}
	for i := range A {
		rowCh <- i
	}
	close(rowCh)
	wg.Wait()

	out := make([]int64, len(A))
	var agg Stats
	for i, r := range results {
		if r.err != nil {
			return nil, Stats{}, fmt.Errorf("core: row %d: %w", i, r.err)
		}
		out[i] = r.value
		agg.MACs += r.stats.MACs
		agg.TablesGarbled += r.stats.TablesGarbled
		agg.TablesScheduled += r.stats.TablesScheduled
		agg.TableBytes += r.stats.TableBytes
		agg.IdleSlots += r.stats.IdleSlots
		agg.RNGBitsDrawn += r.stats.RNGBitsDrawn
	}
	mm, err := a.sim.MatMulStats(len(A), len(y), 1)
	if err != nil {
		return nil, Stats{}, err
	}
	agg.Cycles = mm.Cycles
	agg.Stages = mm.Stages
	agg.CoreUtilization = mm.CoreUtilization
	agg.ModeledTime = mm.ModeledTime
	agg.PCIeTime = a.sim.Config().PCIe.TransferTime(int(agg.TableBytes))
	return out, agg, nil
}

// SecureMatMul computes A·B for a server-held matrix A (n×m raw
// fixed-point values) and a client-held matrix B (m×p): the element
// Y[i][j] is the sequential-MAC dot product of row i of A and column j
// of B — Eq. 3 of the paper, with the accelerator garbling each
// element's M rounds.
func (a *Accelerator) SecureMatMul(A, B [][]int64) ([][]int64, Stats, error) {
	if len(A) == 0 || len(B) == 0 {
		return nil, Stats{}, fmt.Errorf("core: empty operand matrix")
	}
	m := len(A[0])
	if len(B) != m {
		return nil, Stats{}, fmt.Errorf("core: inner dimensions %d and %d differ", m, len(B))
	}
	p := len(B[0])
	for i, row := range B {
		if len(row) != p {
			return nil, Stats{}, fmt.Errorf("core: B row %d has %d columns, want %d", i, len(row), p)
		}
	}
	// Column views of B are the client vectors.
	cols := make([][]int64, p)
	for j := 0; j < p; j++ {
		col := make([]int64, m)
		for k := 0; k < m; k++ {
			col[k] = B[k][j]
		}
		cols[j] = col
	}
	out := make([][]int64, len(A))
	var agg Stats
	for i, row := range A {
		if len(row) != m {
			return nil, Stats{}, fmt.Errorf("core: A row %d has %d columns, want %d", i, len(row), m)
		}
		out[i] = make([]int64, p)
		for j := 0; j < p; j++ {
			v, st, err := a.SecureDotProduct(row, cols[j])
			if err != nil {
				return nil, Stats{}, fmt.Errorf("core: element (%d,%d): %w", i, j, err)
			}
			out[i][j] = v
			agg.MACs += st.MACs
			agg.TablesGarbled += st.TablesGarbled
			agg.TablesScheduled += st.TablesScheduled
			agg.TableBytes += st.TableBytes
			agg.IdleSlots += st.IdleSlots
			agg.RNGBitsDrawn += st.RNGBitsDrawn
		}
	}
	// §4.3 timing: 1 product per 3·M·N·P·b cycles per unit, plus fill.
	mm, err := a.sim.MatMulStats(len(A), m, p)
	if err != nil {
		return nil, Stats{}, err
	}
	agg.Cycles = mm.Cycles
	agg.Stages = mm.Stages
	agg.CoreUtilization = mm.CoreUtilization
	agg.ModeledTime = mm.ModeledTime
	agg.PCIeTime = a.sim.Config().PCIe.TransferTime(int(agg.TableBytes))
	return out, agg, nil
}

// SecureQuadraticForm computes w·M·wᵀ — the §6 portfolio risk kernel —
// with the matrix held by the server and the weight vector by the
// client. The two chained linear stages both run under the protocol;
// the intermediate M·wᵀ is revealed only as fixed-point values to the
// client side of this in-process run.
func (a *Accelerator) SecureQuadraticForm(M [][]int64, w []int64, f fixed.Format) (float64, Stats, error) {
	if err := f.Validate(); err != nil {
		return 0, Stats{}, err
	}
	mv, st1, err := a.SecureMatVec(M, w)
	if err != nil {
		return 0, Stats{}, err
	}
	// Rescale the first-stage products (2·Frac fraction bits) back to
	// Frac bits before the second stage.
	rescaled := make([]int64, len(mv))
	for i, v := range mv {
		rescaled[i] = v >> uint(f.Frac)
	}
	q, st2, err := a.SecureDotProduct(rescaled, w)
	if err != nil {
		return 0, Stats{}, err
	}
	agg := st1
	agg.MACs += st2.MACs
	agg.Cycles += st2.Cycles
	agg.Stages += st2.Stages
	agg.TablesGarbled += st2.TablesGarbled
	agg.TablesScheduled += st2.TablesScheduled
	agg.TableBytes += st2.TableBytes
	agg.IdleSlots += st2.IdleSlots
	agg.RNGBitsDrawn += st2.RNGBitsDrawn
	agg.ModeledTime += st2.ModeledTime
	agg.PCIeTime += st2.PCIeTime
	return f.DecodeProduct(q), agg, nil
}

// SecureDotProductFixed is the floating-point convenience wrapper: it
// quantises both vectors in format f, runs the protocol and decodes
// the accumulator.
func (a *Accelerator) SecureDotProductFixed(f fixed.Format, x, y []float64) (float64, Stats, error) {
	if err := f.Validate(); err != nil {
		return 0, Stats{}, err
	}
	if f.Width != a.sim.Config().Width {
		return 0, Stats{}, fmt.Errorf("core: format width %d != accelerator width %d", f.Width, a.sim.Config().Width)
	}
	if !a.sim.Config().Signed {
		return 0, Stats{}, fmt.Errorf("core: fixed-point operation requires the signed datapath")
	}
	xr, err := f.EncodeVector(x)
	if err != nil {
		return 0, Stats{}, err
	}
	yr, err := f.EncodeVector(y)
	if err != nil {
		return 0, Stats{}, err
	}
	raw, st, err := a.SecureDotProduct(xr, yr)
	if err != nil {
		return 0, Stats{}, err
	}
	return f.DecodeProduct(raw), st, nil
}
