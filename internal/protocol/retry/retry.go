// Package retry layers client-side fault recovery over the protocol:
// a Policy classifying errors into retryable and fatal with
// exponential full-jitter backoff, and a ReDialer that re-establishes
// a broken session (fresh handshake and OT setup) and replays the
// in-flight request.
//
// Replay is safe by construction: every garbling uses fresh wire
// labels and a fresh free-XOR offset, so a request that died mid-way
// leaked nothing and can be rerun verbatim on a new session — the
// property that makes GC serving embarrassingly restartable per
// request. The only state worth preserving across requests is the
// IKNP OT-extension setup, which the ReDialer re-pays once per
// reconnect, not per retry of an open session.
//
// Fatal errors are never retried: a version mismatch will not heal,
// and a cryptographic or codec failure means one endpoint is broken —
// looping on it would only burn attempts. The default classification
// is deliberately closed: only the known-transient failures
// (disconnects, deadline expiries, BUSY rejections, server-internal
// errors from recovered panics) retry; everything else fails fast.
package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"maxelerator/internal/obs"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

// Policy shapes one retry loop. The zero value is usable: it resolves
// to 4 total attempts, 100ms base backoff doubling up to 5s, full
// jitter, and the Retryable classification.
type Policy struct {
	// MaxAttempts is the total number of tries per request, the first
	// included (so MaxAttempts 1 disables retrying). Default 4.
	MaxAttempts int
	// BaseBackoff caps the sleep before the first retry; each further
	// retry doubles the cap. Default 100ms.
	BaseBackoff time.Duration
	// MaxBackoff bounds the cap's exponential growth. Default 5s.
	MaxBackoff time.Duration
	// Classify reports whether an error is worth retrying. Nil uses
	// Retryable.
	Classify func(error) bool
	// Sleep performs the backoff wait; nil uses time.Sleep. Tests
	// substitute a recorder.
	Sleep func(time.Duration)
	// Rand draws the jitter; nil uses the global math/rand source.
	Rand *rand.Rand
}

// withDefaults resolves the zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Classify == nil {
		p.Classify = Retryable
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Retryable is the default error classification.
//
// Retryable: peer disconnects and refused dials (wire.IsDisconnect),
// deadline expiries (wire.IsTimeout, protocol.ErrPhaseTimeout), BUSY
// load-shedding rejections (protocol.ErrServerBusy), and
// server-internal failures (protocol.ErrInternal — a recovered panic,
// replayable on a fresh session).
//
// Fatal: protocol.ErrVersionMismatch (will not heal on retry),
// protocol.ErrSessionClosed (a caller bug, not a fault), and
// everything unrecognized — cryptographic and codec errors mean an
// endpoint is broken, so the default is closed.
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, protocol.ErrVersionMismatch),
		errors.Is(err, protocol.ErrSessionClosed):
		return false
	case errors.Is(err, protocol.ErrServerBusy),
		errors.Is(err, protocol.ErrPhaseTimeout),
		errors.Is(err, protocol.ErrInternal):
		return true
	default:
		return wire.IsDisconnect(err) || wire.IsTimeout(err)
	}
}

// Reason buckets an error for the retry_attempts_total{reason} label.
func Reason(err error) string {
	switch {
	case err == nil:
		return "none"
	case errors.Is(err, protocol.ErrServerBusy):
		return "busy"
	case errors.Is(err, protocol.ErrInternal):
		return "internal"
	case errors.Is(err, protocol.ErrPhaseTimeout), wire.IsTimeout(err):
		return "timeout"
	case wire.IsDisconnect(err):
		return "disconnect"
	default:
		return "other"
	}
}

// backoff computes the wait before the next try after the given
// 1-based count of failures: full jitter in [0, cap) where cap is
// BaseBackoff·2^(failures-1) bounded by MaxBackoff, floored at the
// server's BusyError.RetryAfter hint when one was given. Full jitter
// desynchronizes a thundering herd of clients all rejected at once —
// the whole point of shedding load is that it must not come back as
// one synchronized wave.
func (p Policy) backoff(failures int, err error) time.Duration {
	ceil := p.BaseBackoff
	for i := 1; i < failures && ceil < p.MaxBackoff; i++ {
		ceil *= 2
	}
	if ceil > p.MaxBackoff || ceil <= 0 {
		ceil = p.MaxBackoff
	}
	var d time.Duration
	if p.Rand != nil {
		d = time.Duration(p.Rand.Int63n(int64(ceil)))
	} else {
		d = time.Duration(rand.Int63n(int64(ceil)))
	}
	var be *protocol.BusyError
	if errors.As(err, &be) && d < be.RetryAfter {
		d = be.RetryAfter
	}
	return d
}

// ReDialer wraps a protocol.Client with transparent reconnection: Do
// runs one request, and any retryable failure — at dial, mid-session,
// or a BUSY rejection — tears the session down, backs off, dials a
// fresh connection through Connect (new handshake, new OT setup), and
// replays the request, up to the policy's attempt budget. Not safe
// for concurrent use, mirroring ClientSession.
type ReDialer struct {
	client  *protocol.Client
	connect func() (wire.Conn, error)
	policy  Policy
	reg     *obs.Registry

	conn       wire.Conn
	sess       *protocol.ClientSession
	dialed     bool // a session has been established at least once
	reconnects int
	closed     bool
}

// NewReDialer builds a ReDialer dialing sessions for client over
// connections supplied by connect (called once per connection attempt
// — typically a net.Dial wrapped in wire.NewStreamConn).
func NewReDialer(client *protocol.Client, connect func() (wire.Conn, error), policy Policy) (*ReDialer, error) {
	if client == nil {
		return nil, fmt.Errorf("retry: nil client")
	}
	if connect == nil {
		return nil, fmt.Errorf("retry: nil connect function")
	}
	return &ReDialer{client: client, connect: connect, policy: policy.withDefaults()}, nil
}

// WithObs attaches a metrics registry: retry_attempts_total{reason}
// counts failed retryable attempts and reconnects_total the session
// re-establishments. Returns rd for chaining; a nil registry is a
// no-op, like everywhere else in the repo.
func (rd *ReDialer) WithObs(reg *obs.Registry) *ReDialer {
	rd.reg = reg
	return rd
}

// Do runs one request, reconnecting and replaying on retryable
// failures. It returns the first fatal error unchanged; exhausting the
// attempt budget returns the last error wrapped with the budget named.
func (rd *ReDialer) Do(y []int64) ([]int64, error) {
	if rd.closed {
		return nil, protocol.ErrSessionClosed
	}
	p := rd.policy
	for attempt := 1; ; attempt++ {
		out, err := rd.attempt(y)
		if err == nil {
			return out, nil
		}
		if !p.Classify(err) {
			return nil, err
		}
		rd.reg.Counter("retry_attempts_total",
			"request attempts that failed with a retryable error",
			obs.L("reason", Reason(err))).Inc()
		if attempt >= p.MaxAttempts {
			return nil, fmt.Errorf("retry: %d attempts exhausted: %w", p.MaxAttempts, err)
		}
		p.Sleep(p.backoff(attempt, err))
	}
}

// attempt runs one try: ensure a live session, run the request, and on
// failure drop the session if it broke (a rejected input on a healthy
// session keeps it).
func (rd *ReDialer) attempt(y []int64) ([]int64, error) {
	if err := rd.ensureSession(); err != nil {
		return nil, err
	}
	out, err := rd.sess.Do(y)
	if err != nil && rd.sess.Err() != nil {
		rd.dropSession()
	}
	return out, err
}

// ensureSession dials a fresh connection and session if none is live.
func (rd *ReDialer) ensureSession() error {
	if rd.sess != nil {
		return nil
	}
	conn, err := rd.connect()
	if err != nil {
		return err
	}
	sess, err := rd.client.Dial(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if rd.dialed {
		rd.reconnects++
		rd.reg.Counter("reconnects_total",
			"sessions re-established after a retryable failure").Inc()
	}
	rd.dialed = true
	rd.conn, rd.sess = conn, sess
	return nil
}

// dropSession discards the current session and closes its connection.
func (rd *ReDialer) dropSession() {
	if rd.conn != nil {
		rd.conn.Close()
	}
	rd.conn, rd.sess = nil, nil
}

// Reconnects reports how many times the dialer re-established a
// session after the first.
func (rd *ReDialer) Reconnects() int { return rd.reconnects }

// Close ends the current session (if any) and marks the dialer
// closed; further Do calls return protocol.ErrSessionClosed.
// Idempotent.
func (rd *ReDialer) Close() error {
	rd.closed = true
	if rd.sess == nil {
		return nil
	}
	err := rd.sess.Close()
	rd.dropSession()
	return err
}
