package main

import (
	"sort"
	"testing"
)

func TestVersionLess(t *testing.T) {
	paths := []string{
		"BENCH_PR10.json", "BENCH_PR2.json", "BENCH_PR9.json", "BENCH_PR1.json",
	}
	sort.Slice(paths, func(i, j int) bool { return versionLess(paths[i], paths[j]) })
	want := []string{"BENCH_PR1.json", "BENCH_PR2.json", "BENCH_PR9.json", "BENCH_PR10.json"}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("sorted order %v, want %v", paths, want)
		}
	}
	cases := []struct {
		a, b string
		less bool
	}{
		{"PR9", "PR10", true},
		{"PR10", "PR9", false},
		{"PR2", "PR2", false},
		{"a", "b", true},
		{"PR2", "PR2b", true},  // shorter suffix first
		{"PR02", "PR2", false}, // equal numeric runs fall through to length
	}
	for _, c := range cases {
		if got := versionLess(c.a, c.b); got != c.less {
			t.Errorf("versionLess(%q, %q) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestTrimGridName(t *testing.T) {
	if got := trimGridName("/x/y/BENCH_PR8.json"); got != "PR8" {
		t.Errorf("trimGridName = %q, want PR8", got)
	}
	if got := trimGridName("odd"); got != "odd" {
		t.Errorf("short names pass through, got %q", got)
	}
}

func TestDeltaPct(t *testing.T) {
	if got := deltaPct(100, 80, true); got != "-20.0%" {
		t.Errorf("deltaPct = %q", got)
	}
	if got := deltaPct(0, 5, true); got != "—" {
		t.Errorf("zero-base delta = %q, want —", got)
	}
	if got := deltaPct(1, 2, false); got != "—" {
		t.Errorf("missing cell delta = %q, want —", got)
	}
}

// The trend report must load the repo's committed grids end to end.
func TestTrendReportOnCommittedGrids(t *testing.T) {
	if err := trendReport("../.."); err != nil {
		t.Fatalf("trendReport over committed BENCH_PR*.json: %v", err)
	}
	if err := trendReport(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}
