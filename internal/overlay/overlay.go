// Package overlay models the second Table 2 baseline: the FPGA
// overlay architecture for secure function evaluation of Fang,
// Ioannidis and Leeser ([14], FPGA 2017). An overlay instantiates
// generic garbled components (logic gates) on the fabric and loads the
// secure function's netlist onto them at run time — flexible, but the
// paper notes overlays in general need 40–100× more LUTs than direct
// designs and pay per-gate latency that leaves garbling cores idle.
//
// The paper compares against [14]'s published numbers (interpolating
// the 16-bit point from the published 8/32/64-bit results) rather than
// re-synthesising it, and so does this model: the published cycle
// counts are the calibration anchors, and other widths scale by the
// overlay's per-AND-gate cost.
package overlay

import (
	"fmt"
	"time"

	"maxelerator/internal/paper"
)

// Cores is the overlay's parallel garbled-gate core count, fixed by
// BRAM and gate latency on its platform.
const Cores = 43

// ClockMHz is the overlay design's clock.
const ClockMHz = 200

// Model is the overlay cost model.
type Model struct {
	// cyclesPerAND is the calibrated per-AND garbling cost across the
	// whole overlay (all cores), derived from the anchors.
	cyclesPerAND float64
}

// NewModel calibrates the model from the paper's published anchor at
// b=8: 4.4e3 cycles per 8-bit MAC. A b-bit serial-multiplier MAC has
// roughly b² + 4b AND gates, so the per-AND cost falls out of the
// anchor.
func NewModel() *Model {
	b := 8.0
	ands := b*b + 4*b
	return &Model{cyclesPerAND: paper.Overlay.CyclesPerMAC[8] / ands}
}

// CyclesPerMAC returns the modelled cycle cost of one b-bit MAC. At
// the calibrated widths it returns the paper's published (interpolated)
// numbers exactly; elsewhere it scales by the per-AND cost.
func (m *Model) CyclesPerMAC(b int) (float64, error) {
	if b < 2 {
		return 0, fmt.Errorf("overlay: bit-width %d must be ≥ 2", b)
	}
	if v, ok := paper.Overlay.CyclesPerMAC[b]; ok {
		return v, nil
	}
	fb := float64(b)
	return m.cyclesPerAND * (fb*fb + 4*fb), nil
}

// TimePerMAC converts CyclesPerMAC at the overlay clock.
func (m *Model) TimePerMAC(b int) (time.Duration, error) {
	c, err := m.CyclesPerMAC(b)
	if err != nil {
		return 0, err
	}
	return time.Duration(c / (ClockMHz * 1e6) * float64(time.Second)), nil
}

// ThroughputMACsPerSec is the whole-overlay throughput.
func (m *Model) ThroughputMACsPerSec(b int) (float64, error) {
	c, err := m.CyclesPerMAC(b)
	if err != nil {
		return 0, err
	}
	return ClockMHz * 1e6 / c, nil
}

// PerCoreMACsPerSec is Table 2's throughput-per-core metric.
func (m *Model) PerCoreMACsPerSec(b int) (float64, error) {
	t, err := m.ThroughputMACsPerSec(b)
	if err != nil {
		return 0, err
	}
	return t / Cores, nil
}

// LUTOverheadRange is the generic overlay LUT overhead the paper
// cites from [15]: 40× to 100× versus a direct design.
func LUTOverheadRange() (low, high int) { return 40, 100 }
