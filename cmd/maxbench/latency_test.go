package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// testOutput returns an output plus the two capture buffers (data, msg).
func testOutput(jsonOut bool) (*output, *bytes.Buffer, *bytes.Buffer) {
	data, msg := &bytes.Buffer{}, &bytes.Buffer{}
	return &output{json: jsonOut, data: data, msg: msg}, data, msg
}

// TestRunLatencyJSON runs the smallest real measurement through both
// passes and checks the machine-readable artefact: two modes, sane
// ordering of the percentiles, and a reported speedup.
func TestRunLatencyJSON(t *testing.T) {
	out, data, msg := testOutput(true)
	lc := latencyConfig{rows: 2, cols: 2, width: 8, requests: 3, precompute: true, pool: 1}
	if err := runLatency(lc, out); err != nil {
		t.Fatal(err)
	}
	var rep latencyReport
	if err := json.Unmarshal(data.Bytes(), &rep); err != nil {
		t.Fatalf("latency JSON did not parse: %v\n%s", err, data.String())
	}
	if len(rep.Results) != 2 || rep.Results[0].Mode != "inline" || rep.Results[1].Mode != "precomputed" {
		t.Fatalf("results = %+v, want inline then precomputed", rep.Results)
	}
	for _, r := range rep.Results {
		if r.Requests != 3 {
			t.Fatalf("%s requests = %d, want 3", r.Mode, r.Requests)
		}
		if r.P50Ms <= 0 || r.P50Ms > r.P95Ms || r.P95Ms > r.P99Ms {
			t.Fatalf("%s percentiles not ordered: %+v", r.Mode, r)
		}
	}
	if rep.SpeedupP50 <= 0 {
		t.Fatalf("speedup = %v, want > 0", rep.SpeedupP50)
	}
	// The unified writer contract: the data stream is pure JSON,
	// progress lives on the message stream.
	if !json.Valid(data.Bytes()) {
		t.Fatalf("data stream is not pure JSON:\n%s", data.String())
	}
	if !strings.Contains(msg.String(), "inline pass") {
		t.Fatalf("progress missing from message stream:\n%s", msg.String())
	}
}

func TestRunLatencyHumanOutput(t *testing.T) {
	out, data, msg := testOutput(false)
	lc := latencyConfig{rows: 2, cols: 2, width: 8, requests: 2}
	if err := runLatency(lc, out); err != nil {
		t.Fatal(err)
	}
	s := data.String()
	if !strings.Contains(s, "p50") || !strings.Contains(s, "inline") {
		t.Fatalf("human output missing table:\n%s", s)
	}
	if strings.Contains(s, "precomputed") {
		t.Fatalf("precomputed pass ran without -precompute:\n%s", s)
	}
	// Progress never pollutes the artifact stream.
	if strings.Contains(s, "pass (") {
		t.Fatalf("progress leaked onto the data stream:\n%s", s)
	}
	if msg.Len() == 0 {
		t.Fatal("no progress on the message stream")
	}
}

func TestRunLatencyValidates(t *testing.T) {
	out, _, _ := testOutput(false)
	if err := runLatency(latencyConfig{rows: 0, cols: 2, width: 8, requests: 1}, out); err == nil {
		t.Fatal("zero rows accepted")
	}
	if err := runLatency(latencyConfig{rows: 2, cols: 2, width: 8, requests: 0}, out); err == nil {
		t.Fatal("zero requests accepted")
	}
	if err := runLatency(latencyConfig{rows: 2, cols: 2, width: 7, requests: 1}, out); err == nil {
		t.Fatal("bad width accepted")
	}
}

// TestPercentileNearestRank pins the nearest-rank percentile math with
// a table over known samples, including the n=1 and rank-equals-n
// edge cases the -latency and -grid artifacts depend on.
func TestPercentileNearestRank(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sorted []time.Duration
		p      int
		want   time.Duration
	}{
		{"empty", nil, 50, 0},
		// n=1: every percentile is the single sample.
		{"n=1 p1", []time.Duration{7}, 1, 7},
		{"n=1 p50", []time.Duration{7}, 50, 7},
		{"n=1 p99", []time.Duration{7}, 99, 7},
		{"n=1 p100", []time.Duration{7}, 100, 7},
		// n=4: ceil(p*n/100) ranks.
		{"n=4 p1", []time.Duration{10, 20, 30, 40}, 1, 10},
		{"n=4 p25", []time.Duration{10, 20, 30, 40}, 25, 10},
		{"n=4 p50", []time.Duration{10, 20, 30, 40}, 50, 20},
		{"n=4 p51", []time.Duration{10, 20, 30, 40}, 51, 30},
		{"n=4 p75", []time.Duration{10, 20, 30, 40}, 75, 30},
		{"n=4 p95", []time.Duration{10, 20, 30, 40}, 95, 40},
		{"n=4 p99", []time.Duration{10, 20, 30, 40}, 99, 40},
		// rank equals n exactly (p*n/100 integral at the top).
		{"n=4 p100", []time.Duration{10, 20, 30, 40}, 100, 40},
		{"n=100 p50", mkSamples(100), 50, 50},
		{"n=100 p99", mkSamples(100), 99, 99},
		{"n=100 p100", mkSamples(100), 100, 100},
		// p=0 clamps to the first sample rather than indexing below it.
		{"p0 clamps", []time.Duration{10, 20}, 0, 10},
	} {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(p=%d) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
}

// mkSamples builds 1..n as durations.
func mkSamples(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i + 1)
	}
	return out
}

func TestPassStatsMeanAndOnlineSeconds(t *testing.T) {
	ps := passStats{samples: []time.Duration{time.Millisecond, 3 * time.Millisecond}}
	if got := ps.mean(); got != 2*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
	if got := ps.onlineSeconds(); got != 0.004 {
		t.Fatalf("onlineSeconds = %v", got)
	}
	var empty passStats
	if empty.mean() != 0 || empty.onlineSeconds() != 0 {
		t.Fatal("empty passStats not zero")
	}
}
