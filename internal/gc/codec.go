package gc

import (
	"encoding/binary"
	"fmt"

	"maxelerator/internal/label"
)

// Wire codec for Material: a versioned, explicit binary layout so that
// non-Go evaluators can speak the protocol (gob is Go-only). Layout,
// all integers little-endian:
//
//	byte    version (1)
//	uint64  tweak base
//	uint32  table count        then per table: uint8 rows, rows×16 B
//	uint32  garbler labels     then 16 B each
//	2×16 B  constant labels
//	uint32  output perm bits   then packed bits (LSB first)
//	uint32  state-in labels    then 16 B each (0 when absent)
//
// The format is self-delimiting and rejects truncated or oversized
// input.

// codecVersion is the current material wire-format version.
const codecVersion = 1

// maxCodecItems bounds per-field counts against corrupt headers.
const maxCodecItems = 1 << 24

// MaterialSize reports the exact encoded length of m, or an error if a
// table is not representable. Callers sizing reusable buffers (the wire
// arena) use it to append without reallocation.
func MaterialSize(m *Material) (int, error) {
	size := 1 + 8 + 4
	for _, t := range m.Tables {
		if len(t) > 255 {
			return 0, fmt.Errorf("gc: table with %d rows not representable", len(t))
		}
		size += 1 + len(t)*label.Size
	}
	size += 4 + len(m.GarblerActive)*label.Size
	size += 2 * label.Size
	size += 4 + (len(m.OutputPerm)+7)/8
	size += 4 + len(m.StateInActive)*label.Size
	return size, nil
}

// MarshalMaterial serialises m in the versioned binary layout.
func MarshalMaterial(m *Material) ([]byte, error) {
	size, err := MaterialSize(m)
	if err != nil {
		return nil, err
	}
	return AppendMaterial(make([]byte, 0, size), m)
}

// AppendMaterial appends m's versioned binary encoding to dst and
// returns the extended slice. The bytes produced are identical to
// MarshalMaterial's; the split lets the serve path scatter-gather
// material into a pooled wire buffer without a per-table allocation.
func AppendMaterial(dst []byte, m *Material) ([]byte, error) {
	for _, t := range m.Tables {
		if len(t) > 255 {
			return nil, fmt.Errorf("gc: table with %d rows not representable", len(t))
		}
	}
	out := dst
	out = append(out, codecVersion)
	out = binary.LittleEndian.AppendUint64(out, m.TweakBase)

	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.Tables)))
	for _, t := range m.Tables {
		out = append(out, byte(len(t)))
		for _, row := range t {
			out = append(out, row[:]...)
		}
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.GarblerActive)))
	for _, l := range m.GarblerActive {
		out = append(out, l[:]...)
	}
	out = append(out, m.ConstActive[0][:]...)
	out = append(out, m.ConstActive[1][:]...)

	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.OutputPerm)))
	var packed byte
	for i, v := range m.OutputPerm {
		if v {
			packed |= 1 << (uint(i) % 8)
		}
		if i%8 == 7 {
			out = append(out, packed)
			packed = 0
		}
	}
	if len(m.OutputPerm)%8 != 0 {
		out = append(out, packed)
	}

	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.StateInActive)))
	for _, l := range m.StateInActive {
		out = append(out, l[:]...)
	}
	return out, nil
}

// decoder is a bounds-checked cursor over the encoded bytes.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) {
		return nil, fmt.Errorf("gc: truncated material (need %d bytes at offset %d of %d)", n, d.off, len(d.buf))
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) u32() (int, error) {
	b, err := d.bytes(4)
	if err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(b)
	if v > maxCodecItems {
		return 0, fmt.Errorf("gc: implausible count %d in material", v)
	}
	return int(v), nil
}

func (d *decoder) label() (label.Label, error) {
	b, err := d.bytes(label.Size)
	if err != nil {
		return label.Zero, err
	}
	var l label.Label
	copy(l[:], b)
	return l, nil
}

// UnmarshalMaterial parses the versioned binary layout.
func UnmarshalMaterial(data []byte) (*Material, error) {
	d := &decoder{buf: data}
	ver, err := d.bytes(1)
	if err != nil {
		return nil, err
	}
	if ver[0] != codecVersion {
		return nil, fmt.Errorf("gc: unsupported material version %d", ver[0])
	}
	tw, err := d.bytes(8)
	if err != nil {
		return nil, err
	}
	m := &Material{TweakBase: binary.LittleEndian.Uint64(tw)}

	nTables, err := d.u32()
	if err != nil {
		return nil, err
	}
	m.Tables = make([][]label.Label, nTables)
	for i := range m.Tables {
		rows, err := d.bytes(1)
		if err != nil {
			return nil, err
		}
		t := make([]label.Label, rows[0])
		for j := range t {
			if t[j], err = d.label(); err != nil {
				return nil, err
			}
		}
		m.Tables[i] = t
	}

	nGarbler, err := d.u32()
	if err != nil {
		return nil, err
	}
	m.GarblerActive = make([]label.Label, nGarbler)
	for i := range m.GarblerActive {
		if m.GarblerActive[i], err = d.label(); err != nil {
			return nil, err
		}
	}
	if m.ConstActive[0], err = d.label(); err != nil {
		return nil, err
	}
	if m.ConstActive[1], err = d.label(); err != nil {
		return nil, err
	}

	nPerm, err := d.u32()
	if err != nil {
		return nil, err
	}
	permBytes, err := d.bytes((nPerm + 7) / 8)
	if err != nil {
		return nil, err
	}
	m.OutputPerm = make([]bool, nPerm)
	for i := range m.OutputPerm {
		m.OutputPerm[i] = permBytes[i/8]>>(uint(i)%8)&1 == 1
	}

	nState, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nState > 0 {
		m.StateInActive = make([]label.Label, nState)
		for i := range m.StateInActive {
			if m.StateInActive[i], err = d.label(); err != nil {
				return nil, err
			}
		}
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("gc: %d trailing bytes after material", len(data)-d.off)
	}
	return m, nil
}
