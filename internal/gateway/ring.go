package gateway

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring over backend names with virtual
// nodes. Sessions hash their precompute shape key onto the ring, so a
// given shape always lands on the same backend while it stays healthy —
// that backend's pre-garbled pool is the warm one — and membership
// changes only remap the shapes that hashed near the departed member,
// not the whole fleet.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]struct{}
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVnodes is the virtual-node count per member when NewRing is
// given zero: enough replicas that an 8-backend fleet balances within
// a few tens of percent, small enough that rebuilds stay trivial.
const DefaultVnodes = 128

// NewRing builds an empty ring with the given virtual-node count per
// member (DefaultVnodes if <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// ringHash is FNV-1a 64 through a splitmix64 finalizer: stable across
// processes (routing must agree between gateway restarts) and cheap
// enough to hash per session. The finalizer matters — raw FNV of short
// near-identical strings ("backend-3#17") clusters on the ring badly
// enough to triple one member's share of the keyspace.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		h := ringHash(member + "#" + itoa(i))
		r.points = append(r.points, ringPoint{hash: h, member: member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove ejects a member (idempotent).
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[member]
	return ok
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the members in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Lookup returns up to n distinct members in ring order starting at
// key's position: index 0 is the primary, the rest are the failover
// replicas a session tries in order. n <= 0 means every member.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.member]; dup {
			continue
		}
		seen[p.member] = struct{}{}
		out = append(out, p.member)
	}
	return out
}

// itoa is strconv.Itoa for the small non-negative vnode indices,
// inlined to keep the hash input construction allocation-free on the
// common path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
