package circuit

import "fmt"

// Arithmetic blocks. Every block uses the GC-optimised constructions
// the paper builds on: ripple adders with one AND gate per bit
// (TinyGarble), multiplexers with one AND per bit, conditional
// 2's-complement negation with one adder, and the tree-based multiplier
// of Fig. 2 built from partial-product AND layers plus an adder tree.

// ConstWord returns a width-bit word wired to the constant v
// (little-endian). Bits of v above width are discarded.
func (b *Builder) ConstWord(v uint64, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.Const(v>>uint(i)&1 == 1)
	}
	return w
}

// fullAdder returns (sum, carryOut) for one bit position using the
// 1-AND 4-XOR cell: s = a ⊕ b ⊕ c, c' = c ⊕ ((a⊕c) ∧ (b⊕c)).
func (b *Builder) fullAdder(a, x, c int) (sum, carry int) {
	ac := b.XOR(a, c)
	xc := b.XOR(x, c)
	sum = b.XOR(a, xc)
	carry = b.XOR(c, b.AND(ac, xc))
	return sum, carry
}

// AddCarry returns x + y with an explicit initial carry wire and the
// final carry-out. Operands must have equal width.
func (b *Builder) AddCarry(x, y Word, carryIn int) (Word, int) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("circuit: adder width mismatch %d vs %d", len(x), len(y)))
	}
	sum := make(Word, len(x))
	c := carryIn
	for i := range x {
		sum[i], c = b.fullAdder(x[i], y[i], c)
	}
	return sum, c
}

// Add returns the width-preserving sum x + y (carry-out discarded,
// i.e. arithmetic mod 2^width).
func (b *Builder) Add(x, y Word) Word {
	s, _ := b.AddCarry(x, y, Const0)
	return s
}

// Sub returns x − y mod 2^width via x + ¬y + 1.
func (b *Builder) Sub(x, y Word) Word {
	ny := make(Word, len(y))
	for i, w := range y {
		ny[i] = b.NOT(w)
	}
	s, _ := b.AddCarry(x, ny, Const1)
	return s
}

// Neg returns the 2's complement −x mod 2^width.
func (b *Builder) Neg(x Word) Word {
	zero := b.ConstWord(0, len(x))
	return b.Sub(zero, x)
}

// CondNeg returns s ? −x : x using the standard one-adder trick:
// every bit is XORed with s (conditional bitwise complement) and then
// s is added at the least significant position.
func (b *Builder) CondNeg(x Word, s int) Word {
	fx := make(Word, len(x))
	for i, w := range x {
		fx[i] = b.XOR(w, s)
	}
	sw := b.ConstWord(0, len(x))
	sw[0] = s
	sum, _ := b.AddCarry(fx, sw, Const0)
	return sum
}

// Mux returns s ? x1 : x0 bitwise with one AND per bit:
// out = x0 ⊕ s∧(x1 ⊕ x0).
func (b *Builder) Mux(s int, x1, x0 Word) Word {
	if len(x1) != len(x0) {
		panic(fmt.Sprintf("circuit: mux width mismatch %d vs %d", len(x1), len(x0)))
	}
	out := make(Word, len(x0))
	for i := range x0 {
		out[i] = b.XOR(x0[i], b.AND(s, b.XOR(x1[i], x0[i])))
	}
	return out
}

// ZeroExtend widens x to width bits with constant-zero high bits.
func (b *Builder) ZeroExtend(x Word, width int) Word {
	if width < len(x) {
		panic("circuit: ZeroExtend narrows word")
	}
	out := make(Word, width)
	copy(out, x)
	for i := len(x); i < width; i++ {
		out[i] = Const0
	}
	return out
}

// SignExtend widens x to width bits by replicating the top wire.
func (b *Builder) SignExtend(x Word, width int) Word {
	if width < len(x) {
		panic("circuit: SignExtend narrows word")
	}
	if len(x) == 0 {
		panic("circuit: SignExtend of empty word")
	}
	out := make(Word, width)
	copy(out, x)
	for i := len(x); i < width; i++ {
		out[i] = x[len(x)-1]
	}
	return out
}

// ShiftLeft returns x << n zero-filled, width-preserving. Shifting is
// pure rewiring and costs no gates.
func (b *Builder) ShiftLeft(x Word, n int) Word {
	if n < 0 {
		panic("circuit: negative shift")
	}
	out := make(Word, len(x))
	for i := range out {
		if i < n {
			out[i] = Const0
		} else {
			out[i] = x[i-n]
		}
	}
	return out
}

// GEq returns the wire carrying x ≥ y for unsigned operands, computed
// as the carry-out of x + ¬y + 1 (one AND per bit).
func (b *Builder) GEq(x, y Word) int {
	if len(x) != len(y) {
		panic(fmt.Sprintf("circuit: comparator width mismatch %d vs %d", len(x), len(y)))
	}
	ny := make(Word, len(y))
	for i, w := range y {
		ny[i] = b.NOT(w)
	}
	_, carry := b.AddCarry(x, ny, Const1)
	return carry
}

// LessThan returns the wire carrying x < y for unsigned operands.
func (b *Builder) LessThan(x, y Word) int { return b.NOT(b.GEq(x, y)) }

// Equal returns the wire carrying x == y using an XNOR layer and an
// AND reduction tree (len−1 AND gates).
func (b *Builder) Equal(x, y Word) int {
	if len(x) != len(y) {
		panic(fmt.Sprintf("circuit: equality width mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return Const1
	}
	eq := make([]int, len(x))
	for i := range x {
		eq[i] = b.NOT(b.XOR(x[i], y[i]))
	}
	return b.andTree(eq)
}

func (b *Builder) andTree(ws []int) int {
	for len(ws) > 1 {
		next := ws[:0]
		for i := 0; i+1 < len(ws); i += 2 {
			next = append(next, b.AND(ws[i], ws[i+1]))
		}
		if len(ws)%2 == 1 {
			next = append(next, ws[len(ws)-1])
		}
		ws = next
	}
	return ws[0]
}

// MulTreeUnsigned returns the full-width product x·y
// (len(x)+len(y) bits) using the tree-based structure of Fig. 2:
// one partial-product AND layer per bit of y, pairwise-combined by a
// balanced adder tree so that additions at the same tree level are
// independent and can garble in parallel.
func (b *Builder) MulTreeUnsigned(x, y Word) Word {
	if len(x) == 0 || len(y) == 0 {
		panic("circuit: multiplication of empty word")
	}
	outW := len(x) + len(y)
	// Partial products: pp_i = (x & y_i) << i, zero-extended to outW.
	pps := make([]Word, len(y))
	for i := range y {
		pp := make(Word, outW)
		for j := range pp {
			pp[j] = Const0
		}
		for j := range x {
			pp[i+j] = b.AND(x[j], y[i])
		}
		pps[i] = pp
	}
	// Balanced adder tree.
	for len(pps) > 1 {
		next := pps[:0]
		for i := 0; i+1 < len(pps); i += 2 {
			next = append(next, b.Add(pps[i], pps[i+1]))
		}
		if len(pps)%2 == 1 {
			next = append(next, pps[len(pps)-1])
		}
		pps = next
	}
	return pps[0]
}

// MulSerialUnsigned returns the full-width product using the serial
// shift-and-add structure of the TinyGarble multiplier: a single
// running sum accumulates one conditioned addend per bit of y. Its AND
// count matches the tree multiplier but every addition depends on the
// previous one, which is exactly the serial dependency chain the paper
// criticises (§4: "the implementation of the multiplication operation
// in [16] follows a serial nature that does not allow parallelism").
func (b *Builder) MulSerialUnsigned(x, y Word) Word {
	if len(x) == 0 || len(y) == 0 {
		panic("circuit: multiplication of empty word")
	}
	outW := len(x) + len(y)
	acc := b.ConstWord(0, outW)
	for i := range y {
		pp := make(Word, outW)
		for j := range pp {
			pp[j] = Const0
		}
		for j := range x {
			pp[i+j] = b.AND(x[j], y[i])
		}
		acc = b.Add(acc, pp)
	}
	return acc
}

// MulTreeSigned returns the full-width signed (2's complement) product
// following the paper's §4.3 structure: multiplexer–2's-complement
// pairs condition both inputs to magnitudes, the unsigned tree
// multiplier forms the product, and a final conditional negation
// applies the result sign.
func (b *Builder) MulTreeSigned(x, y Word) Word {
	sx := x[len(x)-1]
	sy := y[len(y)-1]
	mx := b.CondNeg(x, sx)
	my := b.CondNeg(y, sy)
	p := b.MulTreeUnsigned(mx, my)
	return b.CondNeg(p, b.XOR(sx, sy))
}
