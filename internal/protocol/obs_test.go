package protocol

import (
	"crypto/rand"
	"strings"
	"sync"
	"testing"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/wire"
)

// runObservedSession runs one matvec session against an instrumented
// server and returns the hub for inspection.
func runObservedSession(t *testing.T, mode OTMode) *obs.Obs {
	t.Helper()
	o := obs.New(8)
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()

	A := [][]int64{{1, 2, 3}, {-4, 5, -6}}
	y := []int64{7, -8, 9}
	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = srv.Serve(a, Request{Matrix: A, OT: mode})
	}()
	if _, err := clientRun(cli, b, y); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return o
}

func TestSessionMetricsRecorded(t *testing.T) {
	o := runObservedSession(t, OTPerRound)
	reg := o.Metrics()
	if got := reg.Counter("sessions_total", "", obs.L("kind", "matvec")).Value(); got != 1 {
		t.Fatalf("sessions_total = %d", got)
	}
	if got := reg.Gauge("sessions_active", "").Value(); got != 0 {
		t.Fatalf("sessions_active = %d after completion", got)
	}
	// 2 rows × 3 cols = 6 MAC rounds recorded by the simulator.
	if got := reg.Counter("macs_total", "").Value(); got != 6 {
		t.Fatalf("macs_total = %d", got)
	}
	for _, name := range []string{"cycles_total", "stages_total", "tables_garbled_total", "table_bytes_total"} {
		if reg.Counter(name, "").Value() == 0 {
			t.Fatalf("%s did not move", name)
		}
	}
	// The b=8 grid is perfectly packed (0 idle slots/stage), so the
	// idle counter must stay exactly zero — a packed schedule reporting
	// phantom idleness would be a bug.
	if got := reg.Counter("idle_slots_total", "").Value(); got != 0 {
		t.Fatalf("idle_slots_total = %d on a fully packed schedule", got)
	}
	if reg.Histogram("ot_setup_seconds", "", nil).Count() != 1 {
		t.Fatal("ot_setup_seconds not observed")
	}
	if reg.Histogram("session_seconds", "", nil, obs.L("kind", "matvec")).Count() != 1 {
		t.Fatal("session_seconds not observed")
	}
	// Per-core idle-slot counters: the b=8 schedule has idle slots on
	// some core each stage; the summed family must match the aggregate.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `core_idle_slots_total{core="`) {
		t.Fatalf("no per-core idle counters in exposition:\n%s", sb.String())
	}
}

func TestSessionTraceSpans(t *testing.T) {
	o := runObservedSession(t, OTPerRound)
	snaps := o.Traces().Recent(0)
	if len(snaps) != 1 {
		t.Fatalf("%d traces", len(snaps))
	}
	s := snaps[0]
	if !s.Done || s.Err != "" || s.DurationUS <= 0 {
		t.Fatalf("trace %+v", s)
	}
	if s.Kind != "matvec" || s.Attrs["rows"] != "2" || s.Attrs["cols"] != "3" {
		t.Fatalf("trace attrs %+v", s)
	}
	// Phase taxonomy: handshake → ot_setup → rounds (+ per-row
	// round_garble) → decode, every closed span with a monotonic
	// duration.
	var names []string
	for _, sp := range s.Spans {
		names = append(names, sp.Name)
		if sp.DurationUS < 0 {
			t.Fatalf("span %s left open", sp.Name)
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"handshake", "ot_setup", "rounds", "round_garble[0]", "round_garble[1]", "decode"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing span %q in %v", want, names)
		}
	}
	// ot_setup and rounds do real crypto work; their durations must be
	// non-zero.
	for _, sp := range s.Spans {
		if (sp.Name == "ot_setup" || sp.Name == "rounds") && sp.DurationUS == 0 {
			t.Fatalf("span %s has zero duration", sp.Name)
		}
	}
}

func TestCorrelatedSessionObserved(t *testing.T) {
	o := runObservedSession(t, OTCorrelated)
	if got := o.Metrics().Counter("macs_total", "").Value(); got != 6 {
		t.Fatalf("macs_total = %d (correlated path must publish stats)", got)
	}
	s := o.Traces().Recent(1)[0]
	var haveRounds, haveDecode bool
	for _, sp := range s.Spans {
		haveRounds = haveRounds || sp.Name == "rounds"
		haveDecode = haveDecode || sp.Name == "decode"
	}
	if !haveRounds || !haveDecode {
		t.Fatalf("correlated spans incomplete: %+v", s.Spans)
	}
}

func TestSerialSessionObserved(t *testing.T) {
	o := obs.New(4)
	cfg := maxsim.Config{Width: 8, AccWidth: 16}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = srv.Serve(a, Request{Matrix: [][]int64{{3, 5}}, Mode: ModeSerial})
	}()
	if _, err := clientRunSerial(cli, b, []int64{2, 4}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	if got := o.Metrics().Counter("sessions_total", "", obs.L("kind", "serial")).Value(); got != 1 {
		t.Fatalf("serial sessions_total = %d", got)
	}
	if got := o.Metrics().Counter("macs_total", "").Value(); got != 2 {
		t.Fatalf("serial macs_total = %d", got)
	}
}

func TestFailedSessionCountsError(t *testing.T) {
	o := obs.New(4)
	srv, err := NewServer(maxsim.Config{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv.WithObs(o)
	a, b := wire.Pipe()
	defer a.Close()
	// Empty matrix fails validation inside the session wrapper.
	if _, err := srv.Serve(a, Request{}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	b.Close()
	if got := o.Metrics().Counter("session_errors_total", "", obs.L("kind", "matvec")).Value(); got != 1 {
		t.Fatalf("session_errors_total = %d", got)
	}
	if got := o.Metrics().Gauge("sessions_active", "").Value(); got != 0 {
		t.Fatalf("sessions_active = %d after failure", got)
	}
	if s := o.Traces().Recent(1)[0]; s.Err == "" || !s.Done {
		t.Fatalf("failed session trace %+v", s)
	}
}

// TestUninstrumentedServerStillWorks pins the nil-safety contract: a
// server without WithObs must serve sessions exactly as before.
func TestUninstrumentedServerStillWorks(t *testing.T) {
	cfg := maxsim.Config{Width: 8, AccWidth: 24, Signed: true}
	out, _, _ := runSession(t, cfg, [][]int64{{2, 3}}, []int64{4, 5})
	if out[0] != 2*4+3*5 {
		t.Fatalf("result = %d", out[0])
	}
}
