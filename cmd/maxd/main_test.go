package main

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"errors"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"maxelerator/internal/fixed"
	"maxelerator/internal/obs"
	"maxelerator/internal/protocol"
	"maxelerator/internal/wire"
)

// clientRun is one Dial + Do + Close over a fresh connection — the
// single-request convenience the protocol package used to export.
func clientRun(c *protocol.Client, conn wire.Conn, y []int64) ([]int64, error) {
	cs, err := c.Dial(conn)
	if err != nil {
		return nil, err
	}
	out, err := cs.Do(y)
	if err != nil {
		return nil, err
	}
	if err := cs.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

func TestLoadModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, []byte("[[1, 2], [3, 4]]"), 0o600); err != nil {
		t.Fatal(err)
	}
	m, err := loadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[1][0] != 3 {
		t.Fatalf("model = %v", m)
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := loadModel("/nonexistent.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	write := func(name, body string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if _, err := loadModel(write("empty.json", "[]")); err == nil {
		t.Fatal("empty model accepted")
	}
	if _, err := loadModel(write("bad.json", "nope")); err == nil {
		t.Fatal("malformed model accepted")
	}
	// Ragged and empty rows must be rejected at load time with the
	// offending row named, not deep inside a session.
	_, err := loadModel(write("ragged.json", "[[1, 2], [3], [4, 5]]"))
	if err == nil {
		t.Fatal("ragged model accepted")
	}
	if !strings.Contains(err.Error(), "row 1") {
		t.Fatalf("ragged error does not name the row: %v", err)
	}
	_, err = loadModel(write("emptyrow.json", "[[1, 2], []]"))
	if err == nil {
		t.Fatal("empty row accepted")
	}
	if !strings.Contains(err.Error(), "row 1") {
		t.Fatalf("empty-row error does not name the row: %v", err)
	}
	if _, err := loadModel(write("emptyfirst.json", "[[]]")); err == nil {
		t.Fatal("empty first row accepted")
	}
}

func TestValidateModel(t *testing.T) {
	if err := validateModel([][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := validateModel([][]float64{{1}, {2, 3}}); err == nil ||
		!strings.Contains(err.Error(), "ragged") {
		t.Fatalf("ragged matrix error = %v", err)
	}
}

func TestDemoModelShapeAndRange(t *testing.T) {
	f := fixed.Format{Width: 16, Frac: 6}
	m := demoModel(3, 5, 42, f)
	if len(m) != 3 || len(m[0]) != 5 {
		t.Fatalf("shape %dx%d", len(m), len(m[0]))
	}
	for _, row := range m {
		for _, v := range row {
			if math.Abs(v) > f.Max()/8 {
				t.Fatalf("demo value %v outside scale", v)
			}
		}
	}
	// Deterministic per seed.
	if demoModel(3, 5, 42, f)[0][0] != m[0][0] {
		t.Fatal("demo model not reproducible")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(daemonConfig{listen: "127.0.0.1:0", width: 16, frac: 40, demoRows: 2, demoCols: 2, seed: 1, once: true}); err == nil {
		t.Fatal("bad fixed-point format accepted")
	}
	if err := run(daemonConfig{listen: "127.0.0.1:0", width: 16, frac: 6, seed: 1, once: true}); err == nil {
		t.Fatal("missing model accepted")
	}
	if err := run(daemonConfig{listen: "256.0.0.1:99999", width: 16, frac: 6, demoRows: 2, demoCols: 2, seed: 1, once: true}); err == nil {
		t.Fatal("bad listen address accepted")
	}
	if err := run(daemonConfig{listen: "127.0.0.1:0", metricsAddr: "256.0.0.1:99999", width: 16, frac: 6, demoRows: 2, demoCols: 2, seed: 1, once: true}); err == nil {
		t.Fatal("bad metrics address accepted")
	}
}

// freePort grabs an ephemeral port and frees it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func dialWire(t *testing.T, addr string) wire.Conn {
	t.Helper()
	for i := 0; i < 200; i++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return wire.NewStreamConn(c)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("maxd did not come up")
	return nil
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	var lastErr error
	for i := 0; i < 200; i++ {
		resp, err := http.Get(url)
		if err == nil {
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: %s", url, resp.Status)
			}
			return string(body)
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("GET %s never succeeded: %v", url, lastErr)
	return ""
}

func TestServeOneSessionEndToEnd(t *testing.T) {
	// Boot maxd on an ephemeral port in -once mode and run a real
	// client against it.
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(daemonConfig{listen: addr, width: 8, frac: 3, demoRows: 2, demoCols: 2, seed: 7, once: true, drainTimeout: 5 * time.Second})
	}()

	f := fixed.Format{Width: 8, Frac: 3}
	raw, err := f.EncodeVector([]float64{1.0, -1.5})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialWire(t, addr)
	defer conn.Close()
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	out, err := clientRun(cli, conn, raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d outputs", len(out))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestMetricsSurfaceUpBeforeSessions checks the sidecar comes up with
// the daemon and serves an empty (but well-formed) surface before any
// client connects; in -once mode the daemon still exits cleanly.
func TestMetricsSurfaceUpBeforeSessions(t *testing.T) {
	addr, maddr := freePort(t), freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(daemonConfig{listen: addr, metricsAddr: maddr, width: 8, frac: 3, demoRows: 2, demoCols: 2, seed: 7, once: true, drainTimeout: 5 * time.Second})
	}()

	if body := httpGet(t, "http://"+maddr+"/healthz"); body != "ok\n" {
		t.Fatalf("healthz = %q", body)
	}
	before := httpGet(t, "http://"+maddr+"/metrics")
	if strings.Contains(before, "sessions_total") {
		t.Fatalf("sessions_total present before any session:\n%s", before)
	}
	// Byte counters are registered (zero) from boot so dashboards can
	// discover them before traffic arrives.
	if !strings.Contains(before, "wire_bytes_in_total 0") {
		t.Fatalf("wire counters not pre-registered:\n%s", before)
	}

	f := fixed.Format{Width: 8, Frac: 3}
	raw, err := f.EncodeVector([]float64{1.0, -1.5})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialWire(t, addr)
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clientRun(cli, conn, raw); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMetricsCountersMoveAndSpansRecorded(t *testing.T) {
	addr, maddr := freePort(t), freePort(t)
	done := make(chan error, 1)
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		done <- run(daemonConfig{listen: addr, metricsAddr: maddr, width: 8, frac: 3, demoRows: 2, demoCols: 2, seed: 7, drainTimeout: 5 * time.Second})
	}()

	f := fixed.Format{Width: 8, Frac: 3}
	raw, err := f.EncodeVector([]float64{1.0, -1.5})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialWire(t, addr)
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clientRun(cli, conn, raw); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// Poll /metrics until the session lands (the server goroutine may
	// still be finishing when the client returns).
	var body string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		body = httpGet(t, "http://"+maddr+"/metrics")
		if strings.Contains(body, `sessions_total{kind="mux"} 1`) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, want := range []string{
		`sessions_total{kind="mux"} 1`,
		"sessions_active 0",
		"macs_total 4", // 2 rows × 2 cols
		"connections_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Counters that must have moved off zero.
	for _, name := range []string{
		"cycles_total", "tables_garbled_total", "table_bytes_total",
		"trace_cycles_total", "wire_bytes_in_total", "wire_bytes_out_total",
	} {
		if !counterMoved(body, name) {
			t.Fatalf("counter %s did not move:\n%s", name, body)
		}
	}
	for _, want := range []string{
		// stall_cycles_total is exposed even when the tiny demo session
		// never saturates the output port (value may be 0 here; the
		// stalling path is pinned by internal/maxsim tests).
		"# TYPE stall_cycles_total counter",
		"# TYPE ot_setup_seconds histogram",
		"# TYPE session_seconds histogram",
		"ot_setup_seconds_count 1",
		`core_idle_slots_total{core="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /debug/sessions: the completed session must show the span
	// taxonomy with non-zero monotonic durations.
	var parsed struct {
		Sessions []obs.SessionSnapshot `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+maddr+"/debug/sessions")), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Sessions) != 1 {
		t.Fatalf("%d sessions in debug surface", len(parsed.Sessions))
	}
	s := parsed.Sessions[0]
	if !s.Done || s.Err != "" || s.DurationUS <= 0 {
		t.Fatalf("session %+v", s)
	}
	spans := map[string]int64{}
	for _, sp := range s.Spans {
		spans[sp.Name] = sp.DurationUS
	}
	for _, phase := range []string{"handshake", "ot_setup", "rounds", "decode"} {
		d, ok := spans[phase]
		if !ok {
			t.Fatalf("span %s missing: %+v", phase, s.Spans)
		}
		if d < 0 {
			t.Fatalf("span %s left open", phase)
		}
	}
	if spans["ot_setup"] <= 0 || spans["rounds"] <= 0 {
		t.Fatalf("crypto phases report zero duration: %+v", spans)
	}
	if s.Attrs["bytes_in"] == "" || s.Attrs["bytes_out"] == "" {
		t.Fatalf("byte attrs missing: %+v", s.Attrs)
	}

	// Graceful shutdown: SIGTERM drains and exits cleanly.
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// TestHandshakeTimeoutFreesSessionSlot is the peer-stall regression at
// the daemon level: with -max-sessions 1, a client that connects and
// then goes silent must not pin the only slot forever. The handshake
// deadline fires, the session errors out, the slot is released, and a
// real client queued behind it completes. On the pre-deadline code the
// silent connection held the slot indefinitely and this test hung.
func TestHandshakeTimeoutFreesSessionSlot(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		done <- run(daemonConfig{
			listen: addr, width: 8, frac: 3, demoRows: 2, demoCols: 2,
			seed: 7, drainTimeout: 5 * time.Second, maxSessions: 1,
			// The budget must sit comfortably above the genuine base-OT
			// compute gap (~0.5s on a 1-CPU runner) so only the silent
			// peer times out, never the legitimate queued client.
			handshakeTimeout: 3 * time.Second, ioTimeout: 20 * time.Second,
		})
	}()

	// The stalled peer: connect, say nothing, keep the conn open so the
	// server cannot learn of the stall from a disconnect.
	silent := dialWire(t, addr)
	defer silent.Close()

	f := fixed.Format{Width: 8, Frac: 3}
	raw, err := f.EncodeVector([]float64{1.0, -1.5})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialWire(t, addr)
	defer conn.Close()
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cli.WithTimeouts(protocol.Timeouts{Handshake: 20 * time.Second, IO: 20 * time.Second})
	type res struct {
		out []int64
		err error
	}
	ch := make(chan res, 1)
	go func() {
		out, err := clientRun(cli, conn, raw)
		ch <- res{out, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("queued client failed: %v", r.err)
		}
		if len(r.out) != 2 {
			t.Fatalf("got %d outputs", len(r.out))
		}
	case <-time.After(15 * time.Second):
		t.Fatal("queued client never ran: stalled peer still holds the -max-sessions slot")
	}

	if err := proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// httpGetStatus is httpGet without the 200 assertion — overload probes
// expect a 503.
func httpGetStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Get(url)
		if err == nil {
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			return resp.StatusCode, string(body)
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("GET %s never succeeded: %v", url, lastErr)
	return 0, ""
}

// TestAdmissionWaitShedsLoadWithBusy: with -max-sessions full past
// -admission-wait, an overflow connection receives a BUSY frame with
// the retry hint in bounded time — never an indefinite queue — while
// /healthz walks degraded (queueing) → overloaded (rejecting, 503) and
// busy_rejects_total counts the shed.
func TestAdmissionWaitShedsLoadWithBusy(t *testing.T) {
	addr, maddr := freePort(t), freePort(t)
	const wait = time.Second
	done := make(chan error, 1)
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		done <- run(daemonConfig{
			listen: addr, metricsAddr: maddr, width: 8, frac: 3,
			demoRows: 2, demoCols: 2, seed: 7, drainTimeout: 5 * time.Second,
			maxSessions: 1, admissionWait: wait,
			handshakeTimeout: 20 * time.Second, ioTimeout: 20 * time.Second,
		})
	}()

	// The slot holder: a silent connection occupying the only session
	// slot for the duration (its handshake budget outlives the test).
	silent := dialWire(t, addr)
	defer silent.Close()
	// Wait until the holder actually owns the slot (the server's hello
	// arrives once its session starts), so the next dial queues.
	if _, err := silent.RecvMsg(); err != nil {
		t.Fatalf("slot holder never saw the server hello: %v", err)
	}

	conn := dialWire(t, addr)
	defer conn.Close()
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		err     error
		elapsed time.Duration
	}
	ch := make(chan res, 1)
	go func() {
		start := time.Now()
		_, derr := cli.Dial(conn)
		ch <- res{derr, time.Since(start)}
	}()

	// While the overflow connection queues, /healthz reports degraded.
	sawDegraded := false
	for deadline := time.Now().Add(wait); time.Now().Before(deadline); {
		if _, body := httpGetStatus(t, "http://"+maddr+"/healthz"); strings.TrimSpace(body) == obs.HealthDegraded {
			sawDegraded = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	r := <-ch
	if r.err == nil {
		t.Fatal("overflow dial succeeded with the only slot held")
	}
	if !errors.Is(r.err, protocol.ErrServerBusy) {
		t.Fatalf("overflow dial error = %v, want ErrServerBusy", r.err)
	}
	var be *protocol.BusyError
	if !errors.As(r.err, &be) {
		t.Fatalf("overflow dial error = %T, want *BusyError", r.err)
	}
	if be.RetryAfter != wait {
		t.Errorf("RetryAfter = %v, want the admission wait %v", be.RetryAfter, wait)
	}
	// "Never a hang": the rejection arrives around the admission wait,
	// with generous CI slack, not after an unbounded queue.
	if r.elapsed > wait+10*time.Second {
		t.Errorf("BUSY rejection took %v (admission wait %v)", r.elapsed, wait)
	}
	if !sawDegraded {
		t.Error("healthz never reported degraded while the connection queued")
	}

	// Immediately after the rejection the daemon is overloaded: 503.
	code, body := httpGetStatus(t, "http://"+maddr+"/healthz")
	if code != http.StatusServiceUnavailable || strings.TrimSpace(body) != obs.HealthOverloaded {
		t.Errorf("healthz after rejection = %d %q, want 503 %q", code, body, obs.HealthOverloaded)
	}
	if metrics := httpGet(t, "http://"+maddr+"/metrics"); !strings.Contains(metrics, "busy_rejects_total 1") {
		t.Errorf("/metrics missing busy_rejects_total 1:\n%s", metrics)
	}

	// Free the slot so shutdown drains promptly, then stop the daemon.
	silent.Close()
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// counterMoved reports whether the exposition shows a non-zero value
// for the given counter family.
func counterMoved(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" {
			return true
		}
	}
	return false
}

// TestPrecomputeWarmPoolServesAndDrainsOnShutdown boots maxd with the
// offline/online split on, waits for the background workers to warm
// the model's pool, serves one real client from it, and checks the
// shutdown invariant of ISSUE 5: the final metrics snapshot reports
// the hit and zero pooled capacity — no phantom entries survive the
// daemon.
func TestPrecomputeWarmPoolServesAndDrainsOnShutdown(t *testing.T) {
	var logBuf syncBuffer
	log.SetOutput(&logBuf)
	defer log.SetOutput(os.Stderr)

	addr, maddr := freePort(t), freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(daemonConfig{
			listen: addr, metricsAddr: maddr, width: 8, frac: 3,
			demoRows: 2, demoCols: 2, seed: 7, once: true,
			drainTimeout: 5 * time.Second,
			precompute:   true, precomputePool: 1, precomputeShapes: 4,
		})
	}()

	// Wait for the refill workers to warm the admitted shape.
	const depthLine = `precompute_pool_depth{shape="2x2/b8s/matvec/per-round"} 1`
	warm := false
	for i := 0; i < 500 && !warm; i++ {
		warm = strings.Contains(httpGet(t, "http://"+maddr+"/metrics"), depthLine)
		if !warm {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !warm {
		t.Fatal("pool never warmed for the model shape")
	}

	f := fixed.Format{Width: 8, Frac: 3}
	raw, err := f.EncodeVector([]float64{1.0, -1.5})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialWire(t, addr)
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clientRun(cli, conn, raw); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The final snapshot (after engine Stop) must show the hit and a
	// fully drained pool.
	logs := logBuf.String()
	snap := logs[strings.LastIndex(logs, "final metrics snapshot"):]
	if !strings.Contains(snap, `precompute_hits_total{shape="2x2/b8s/matvec/per-round"} 1`) {
		t.Fatalf("warm pool did not serve the request:\n%s", snap)
	}
	if !strings.Contains(snap, `precompute_pool_depth{shape="2x2/b8s/matvec/per-round"} 0`) {
		t.Fatalf("pool depth not drained to zero at shutdown:\n%s", snap)
	}
	if !strings.Contains(snap, "precompute_shapes 0") {
		t.Fatalf("shapes gauge not drained to zero at shutdown:\n%s", snap)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: run's goroutine logs
// concurrently with the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMetricsHandlerPprofGating: the pprof surface exists only behind
// the flag — a daemon without -pprof must 404 every /debug/pprof path.
// TestAdvertiseShapezEndpoint: -advertise mounts /shapez on the
// metrics address with the shapes the daemon serves warm — with
// -precompute, the model shape pre-admitted in both poolable OT modes
// at boot. This is the surface maxgw's prober folds into routing.
func TestAdvertiseShapezEndpoint(t *testing.T) {
	addr, maddr := freePort(t), freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(daemonConfig{listen: addr, metricsAddr: maddr, width: 8, frac: 3,
			demoRows: 2, demoCols: 2, seed: 7, once: true, drainTimeout: 5 * time.Second,
			precompute: true, precomputePool: 1, precomputeShapes: 4, advertise: true})
	}()

	body := httpGet(t, "http://"+maddr+"/shapez")
	var payload struct {
		Shapes []string `json:"shapes"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("parsing /shapez %q: %v", body, err)
	}
	for _, want := range []string{"2x2/b8s/matvec/per-round", "2x2/b8s/matvec/batched"} {
		found := false
		for _, s := range payload.Shapes {
			found = found || s == want
		}
		if !found {
			t.Fatalf("/shapez = %v, missing %q", payload.Shapes, want)
		}
	}
	// /metrics still answers on the same address next to /shapez.
	if !strings.Contains(httpGet(t, "http://"+maddr+"/metrics"), "precompute_pool_depth") {
		t.Fatal("/metrics lost behind the advertise mux")
	}

	// Serve the one -once session so the daemon exits cleanly.
	f := fixed.Format{Width: 8, Frac: 3}
	raw, err := f.EncodeVector([]float64{1.0, -1.5})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialWire(t, addr)
	defer conn.Close()
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cli.Dial(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Do(raw); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestAdvertiseRequiresMetricsAddr: /shapez lives on the metrics mux,
// so -advertise without -metrics-addr is a config error, not a silent
// no-op a gateway would probe forever.
func TestAdvertiseRequiresMetricsAddr(t *testing.T) {
	err := run(daemonConfig{listen: freePort(t), width: 8, frac: 3, demoRows: 2,
		demoCols: 2, once: true, advertise: true})
	if err == nil || !strings.Contains(err.Error(), "-metrics-addr") {
		t.Fatalf("err = %v, want a -metrics-addr requirement", err)
	}
}

func TestMetricsHandlerPprofGating(t *testing.T) {
	o := obs.New(0)
	o.Metrics().Counter("gating_probe_total", "registered so /metrics has a body").Inc()
	plain := httptest.NewServer(metricsHandler(o, false))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without -pprof = %s, want 404", resp.Status)
	}

	profiled := httptest.NewServer(metricsHandler(o, true))
	defer profiled.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/heap", "/metrics", "/healthz"} {
		resp, err := http.Get(profiled.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with -pprof = %s", path, resp.Status)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s returned an empty body", path)
		}
	}
}

// TestPprofRequiresMetricsAddr: the flag is meaningless without the
// sidecar, so the daemon refuses the combination instead of silently
// profiling nothing.
func TestPprofRequiresMetricsAddr(t *testing.T) {
	err := run(daemonConfig{listen: "127.0.0.1:0", width: 8, frac: 3, demoRows: 2, demoCols: 2, seed: 1, once: true, pprof: true})
	if err == nil || !strings.Contains(err.Error(), "-metrics-addr") {
		t.Fatalf("err = %v, want -pprof requires -metrics-addr", err)
	}
}

// TestRuntimeMetricsAndPprofEndToEnd boots maxd with -metrics-addr and
// -pprof and checks the acceptance surface: /metrics exposes the
// runtime collector families and /debug/pprof/profile yields a usable
// CPU profile capture from the live daemon.
func TestRuntimeMetricsAndPprofEndToEnd(t *testing.T) {
	addr, maddr := freePort(t), freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(daemonConfig{listen: addr, metricsAddr: maddr, pprof: true,
			width: 8, frac: 3, demoRows: 2, demoCols: 2, seed: 7, once: true, drainTimeout: 5 * time.Second})
	}()

	metrics := httpGet(t, "http://"+maddr+"/metrics")
	for _, want := range []string{
		"runtime_goroutines ",
		"runtime_heap_inuse_bytes ",
		"runtime_gc_pause_seconds_bucket",
		"runtime_gc_cycles_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// A one-second CPU capture through the live daemon: the pprof proto
	// payload is gzip-framed (0x1f 0x8b) and non-trivial.
	profile := httpGet(t, "http://"+maddr+"/debug/pprof/profile?seconds=1")
	if len(profile) < 2 || profile[0] != 0x1f || byte(profile[1]) != 0x8b {
		t.Fatalf("profile capture not a gzip pprof payload (%d bytes)", len(profile))
	}

	f := fixed.Format{Width: 8, Frac: 3}
	raw, err := f.EncodeVector([]float64{1.0, -1.5})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialWire(t, addr)
	cli, err := protocol.NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clientRun(cli, conn, raw); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
