// Package protocol runs the paper's system configuration (Fig. 1, §3)
// between two real endpoints: the cloud server — host CPU plus
// MAXelerator, acting as the garbler — and the client, acting as the
// evaluator. The accelerator simulator produces the garbled tables and
// input labels; the host streams them to the client over a wire.Conn
// (in-memory pipe or TCP); the client obtains its input labels through
// IKNP oblivious transfer and evaluates round by round, exactly the
// sequential-GC flow that lets memory-constrained clients hold only
// one round of labels at a time.
//
// # Protocol v2: multiplexed sessions
//
// A connection carries one versioned handshake and one base-OT + IKNP
// extension setup, then any number of requests. The client drives the
// request loop: each request is opened by the client, shaped by a
// server header (rows, columns, OT mode), served with fresh labels,
// and closed by the client's result report. Paying the expensive OT
// setup once per connection instead of once per request is what makes
// the "millions of users" target reachable; see DESIGN.md §9 for the
// wire format.
//
// The server entry point is Serve (one request over a fresh
// connection) or NewSession (many requests over one connection); the
// client mirrors them with Run and Dial. The garbler hot path fans
// matrix rows out to a worker pool (Request.GarbleWorkers) and streams
// the results strictly in row order, so the wire format is identical
// whatever the pool size.
//
// The threat model is honest-but-curious, matching the paper.
package protocol

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"maxelerator/internal/gc"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/obs"
	"maxelerator/internal/precompute"
	"maxelerator/internal/wire"
)

// ProtoVersion is the wire protocol generation spoken by this package.
// Version 2 introduced the versioned handshake, per-connection OT
// setup and multiplexed request framing; pre-versioned (v1) endpoints
// are detected and rejected with ErrVersionMismatch.
const ProtoVersion = 2

// ErrVersionMismatch is returned (wrapped, with both versions named)
// when the two endpoints speak different protocol generations, instead
// of the gob decode error a raw mismatch would produce.
var ErrVersionMismatch = errors.New("protocol: version mismatch")

// ErrSessionEnded is returned by ServerSession.Serve when the client
// has closed the request loop (or disconnected between requests):
// the session is over, no request was consumed.
var ErrSessionEnded = errors.New("protocol: session ended by client")

// ErrSessionClosed is returned by ClientSession.Do on a session that
// was Closed or broken by an earlier error — a named sentinel instead
// of the opaque gob/transport error a dead session used to produce.
var ErrSessionClosed = errors.New("protocol: client session closed")

// ErrServerBusy marks a connection the server shed at admission: the
// server answered with a busy frame instead of its hello and closed.
// The condition is transient by construction — retry with backoff
// (see BusyError.RetryAfter for the server's hint).
var ErrServerBusy = errors.New("protocol: server busy")

// ErrInternal marks a server-side failure (typically a recovered
// panic) converted into a per-request error frame. The session is
// broken, but the request is safely replayable on a fresh connection:
// every garbling uses fresh labels, so nothing was leaked.
var ErrInternal = errors.New("protocol: internal server error")

// BusyError is the client-side view of a server busy frame. It wraps
// ErrServerBusy so errors.Is classification works, and carries the
// server's retry hint.
type BusyError struct {
	// RetryAfter is the server's suggested backoff before the next
	// connection attempt (zero when the server offered no hint).
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("protocol: server busy (retry after %v)", e.RetryAfter)
	}
	return "protocol: server busy"
}

func (e *BusyError) Unwrap() error { return ErrServerBusy }

// OTMode selects how the evaluator's input labels travel (§3).
type OTMode int

const (
	// OTPerRound runs one OT-extension batch per MAC round: the
	// memory-constrained evaluator holds only one round of labels.
	OTPerRound OTMode = iota
	// OTBatched transfers every round's labels in one OT-extension
	// batch before any material: fewer round trips, but the client
	// holds Rows·Cols·Width labels at once.
	OTBatched
	// OTCorrelated uses correlated OT: the OT chooses the FALSE labels
	// (free-XOR pairs differ by Δ), one correction ciphertext per wire
	// instead of two, halving label-transfer traffic.
	OTCorrelated
)

// String names the mode for logs and errors.
func (m OTMode) String() string {
	switch m {
	case OTPerRound:
		return "per-round"
	case OTBatched:
		return "batched"
	case OTCorrelated:
		return "correlated"
	default:
		return fmt.Sprintf("OTMode(%d)", int(m))
	}
}

// validate is the single place an OT mode is checked, for requests
// built locally and for modes announced on the wire alike.
func (m OTMode) validate() error {
	switch m {
	case OTPerRound, OTBatched, OTCorrelated:
		return nil
	default:
		return fmt.Errorf("protocol: unknown OT mode %d", int(m))
	}
}

// Mode selects the served datapath granularity.
type Mode int

const (
	// ModeMatVec streams one garbled MAC round per matrix element —
	// the accelerator's natural round granularity.
	ModeMatVec Mode = iota
	// ModeSerial streams one garbled *stage* of the bit-serial
	// datapath at a time (§3's memory-constrained client taken to the
	// architecture's natural granularity). Serial requests carry
	// exactly one matrix row and use per-round OT.
	ModeSerial
)

// Wire frames. The server opens the connection with hello, the client
// answers with helloAck, and from then on the client drives: each
// reqOpen is answered by a reqHeader, the round stream, and the
// client's result.
type hello struct {
	// ProtoVersion is negotiated first: endpoints with different
	// generations must fail by name, not by gob decode error.
	ProtoVersion int
	// Width, AccWidth and Signed mirror the accelerator configuration.
	Width, AccWidth int
	Signed          bool
	// Scheme names the AND-garbling scheme.
	Scheme string
}

// helloAck is the client's half of the version negotiation.
type helloAck struct {
	ProtoVersion int
}

// msgBusy is the load-shedding frame: an overloaded server sends it in
// place of its hello and closes the connection. Busy is always true on
// the wire; it is the field that distinguishes a busy frame from a
// hello when the client probes the first frame (a hello decoded into
// msgBusy leaves Busy false, since gob matches fields by name).
type msgBusy struct {
	Busy             bool
	RetryAfterMillis int64
}

// SendBusy sheds one connection: it sends the busy frame carrying the
// retry hint. The caller closes the connection afterwards; the client
// surfaces the frame as a BusyError from Dial.
func SendBusy(conn wire.Conn, retryAfter time.Duration) error {
	return sendGob(conn, msgBusy{Busy: true, RetryAfterMillis: retryAfter.Milliseconds()})
}

// busyRetryAfter converts the wire hint back to a duration.
func busyRetryAfter(m msgBusy) time.Duration {
	return time.Duration(m.RetryAfterMillis) * time.Millisecond
}

// errFrame rides the round stream (tagged roundTagError) to tell the
// evaluator the garbler aborted the request. The message is a generic
// description: internal details (panic values, operand ranges) stay in
// the server log, never on the wire.
type errFrame struct {
	Msg string
}

// Request-loop operations.
const (
	opRequest = "request"
	opEnd     = "end"
)

// reqOpen is the client's frame opening (or ending) one request.
type reqOpen struct {
	Op string
}

// reqHeader is the server's per-request shape announcement.
type reqHeader struct {
	// Seq numbers requests within the session, starting at 0.
	Seq int
	// Mode is the wire name of the served datapath.
	Mode string
	// Rows and Cols describe the server matrix: Rows dot products of
	// length Cols. A plain dot product has Rows == 1.
	Rows, Cols int
	// OT is the label-transfer mode of this request.
	OT OTMode
	// StagesPerMAC is set in serial mode only.
	StagesPerMAC int
}

// Wire names for reqHeader.Mode.
const (
	wireModeMatVec = "matvec"
	wireModeSerial = "serial"
)

// result is the client's final report back to the server (the paper's
// output-sharing step: "Alice and Bob share their output maps to
// learn the output z").
type result struct {
	Values []int64
}

func sendGob(conn wire.Conn, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("protocol: encoding %T: %w", v, err)
	}
	return conn.SendMsg(buf.Bytes())
}

// decodeGob decodes one already-received frame, so a single frame can
// be probed as more than one shape (busy frame vs hello).
func decodeGob(msg []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(msg)).Decode(v); err != nil {
		return fmt.Errorf("protocol: decoding %T: %w", v, err)
	}
	return nil
}

func recvGob(conn wire.Conn, v any) error {
	msg, err := conn.RecvMsg()
	if err != nil {
		return err
	}
	return decodeGob(msg, v)
}

// Round-stream frame tags. Every frame the garbler sends at a round
// boundary carries a one-byte tag, so the stream can deliver either
// garbled material or a terminal error frame — the mechanism that lets
// a recovered server-side panic fail one request explicitly instead of
// leaving the evaluator blocked until its deadline.
const (
	roundTagMaterial byte = 0x00
	roundTagError    byte = 0x01
)

// sendMaterial ships garbled material in the explicit binary wire
// format of gc.MarshalMaterial (language-agnostic, unlike gob), behind
// the material round tag.
func sendMaterial(conn wire.Conn, m *gc.Material) error {
	enc, err := gc.MarshalMaterial(m)
	if err != nil {
		return err
	}
	framed := make([]byte, 1+len(enc))
	framed[0] = roundTagMaterial
	copy(framed[1:], enc)
	return conn.SendMsg(framed)
}

func recvMaterial(conn wire.Conn) (*gc.Material, error) {
	msg, err := conn.RecvMsg()
	if err != nil {
		return nil, err
	}
	if len(msg) == 0 {
		return nil, fmt.Errorf("protocol: empty round frame")
	}
	switch msg[0] {
	case roundTagMaterial:
		return gc.UnmarshalMaterial(msg[1:])
	case roundTagError:
		var ef errFrame
		if err := decodeGob(msg[1:], &ef); err != nil {
			return nil, fmt.Errorf("%w: peer aborted the request (undecodable error frame: %v)", ErrInternal, err)
		}
		return nil, fmt.Errorf("%w: %s", ErrInternal, ef.Msg)
	default:
		return nil, fmt.Errorf("protocol: unknown round frame tag %#02x", msg[0])
	}
}

// sendErrFrame is the garbler's best-effort abort notification on the
// round stream; failures to deliver it are ignored (the peer may
// already be gone, and the session is broken either way).
func sendErrFrame(conn wire.Conn, msg string) error {
	var buf bytes.Buffer
	buf.WriteByte(roundTagError)
	if err := gob.NewEncoder(&buf).Encode(errFrame{Msg: msg}); err != nil {
		return err
	}
	return conn.SendMsg(buf.Bytes())
}

func schemeByName(name string) (gc.Scheme, error) {
	switch name {
	case "half-gates":
		return gc.HalfGates{}, nil
	case "grr3":
		return gc.GRR3{}, nil
	case "four-row":
		return gc.FourRow{}, nil
	default:
		return nil, fmt.Errorf("protocol: unknown garbling scheme %q", name)
	}
}

// Server is the garbler endpoint: it owns the accelerator
// configuration and the model data. Serve and NewSession may be called
// from concurrent goroutines — each session (and each garbling worker
// within one) instantiates its own simulator with a fresh free-XOR
// offset, as the paper requires ("new labels are required for every
// garbling operation to ensure security").
type Server struct {
	// cfg is the resolved simulator configuration (defaults applied at
	// NewServer), shared read-only by every session and worker.
	cfg maxsim.Config
	obs *obs.Obs
	// timeouts are the default per-operation I/O budgets applied to
	// every session (overridable per session via SessionConfig).
	timeouts Timeouts
	// pre, when non-nil, is the offline/online precomputation engine:
	// matvec requests first try a pre-garbled pool entry and only fall
	// back to inline garbling on a miss.
	pre *precompute.Engine
	// arena pools the frame-assembly buffers of the streaming serve
	// path, shared by every session (sync.Pool underneath).
	arena *wire.Arena
	// started flips when the first session begins; the With* option
	// setters consult it to enforce configure-before-serve (mutating a
	// server already shared with session goroutines is a data race).
	started atomic.Bool
}

// mustNotHaveServed panics when an option setter runs after the first
// session started: the With* methods mutate state every session reads
// unsynchronized, so late configuration is a bug, not a request. The
// panic names the offender so the fix is one stack frame away.
func (s *Server) mustNotHaveServed(method string) {
	if s.started.Load() {
		panic(fmt.Sprintf("protocol: Server.%s called after a session was served; configure the server before Serve/NewSession", method))
	}
}

// NewServer builds a server around an accelerator configuration.
func NewServer(cfg maxsim.Config) (*Server, error) {
	// Validate eagerly so misconfiguration surfaces at startup, not on
	// the first client. The resolved configuration (defaults applied)
	// is what every session garbles under.
	sim, err := maxsim.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: sim.Config(), arena: wire.NewArena()}, nil
}

// WithObs attaches an observability hub: every session is counted,
// phase-traced (handshake → ot_setup → rounds → decode) and timed, and
// the per-session simulators record their hardware accounting into the
// hub's registry. Call before serving (panics after the first session);
// returns s for chaining.
func (s *Server) WithObs(o *obs.Obs) *Server {
	s.mustNotHaveServed("WithObs")
	s.obs = o
	s.cfg.Metrics = o.Metrics()
	return s
}

// WithPrecompute attaches an offline/online precomputation engine:
// every matvec request (per-round or batched OT) first tries a
// pre-garbled pool entry for its shape — the online path then runs only
// OT, table streaming and decode, skipping garbling entirely — and
// falls back to inline garbling on a miss, with identical wire format
// either way. Misses teach the engine the shape, so steady traffic
// converges to pool hits. Call before serving (panics after the first
// session); returns s for chaining.
func (s *Server) WithPrecompute(eng *precompute.Engine) *Server {
	s.mustNotHaveServed("WithPrecompute")
	s.pre = eng
	return s
}

// shapeOf keys a request into the precompute pool namespace.
func (s *Server) shapeOf(req Request) precompute.Shape {
	return precompute.Shape{
		Rows:   len(req.Matrix),
		Cols:   len(req.Matrix[0]),
		Width:  s.cfg.Width,
		Signed: s.cfg.Signed,
		Mode:   wireModeMatVec,
		OT:     req.OT.String(),
	}
}

// WithTimeouts sets the default per-operation I/O budgets for every
// session this server runs: Handshake bounds each wire operation of
// the connection-setup phases, IO each steady-state one. The zero
// value leaves operations unbounded (the pre-timeout behaviour). Call
// before serving (panics after the first session); returns s for
// chaining.
func (s *Server) WithTimeouts(t Timeouts) *Server {
	s.mustNotHaveServed("WithTimeouts")
	s.timeouts = t
	return s
}

// ArenaOutstanding reports how many frame-assembly buffers the
// server's wire arena currently has checked out. Every Serve path —
// success, fault, or mid-session disconnect — must return its buffers,
// so a server with no session in flight reports zero; harnesses (cmd/
// maxchaos) assert this after a drain as the arena-leak check.
func (s *Server) ArenaOutstanding() int64 { return s.arena.Outstanding() }

// Stats of the last served computation.
type Stats = maxsim.Stats

// Request describes one computation to serve: the unified entry point
// for every datapath and OT mode (the v1 per-mode Serve* helpers were
// removed in the v2 API cleanup; see the README migration note).
type Request struct {
	// Matrix is the garbler's private input: each row is one
	// sequential MAC chain over the client's vector. A plain dot
	// product is a one-row matrix.
	Matrix [][]int64
	// Mode selects the datapath granularity (default ModeMatVec).
	// ModeSerial requires a one-row matrix and per-round OT.
	Mode Mode
	// OT selects the label-transfer mode (default OTPerRound).
	OT OTMode
	// GarbleWorkers sizes the row-garbling worker pool. 0 or 1 garbles
	// inline on the session goroutine; N > 1 garbles up to N rows
	// concurrently (each worker owns a private simulator, so every row
	// still gets fresh labels) while an in-order streamer keeps the
	// wire format unchanged. Correlated and serial requests garble
	// sequentially by construction and ignore this knob.
	GarbleWorkers int
	// Trace, when non-nil, is a caller-opened session trace the
	// protocol annotates with its phase spans instead of opening its
	// own — this is how the daemon correlates its structured session
	// logs with /debug/sessions entries. Honored by the one-shot Serve
	// only; multiplexed sessions pass it via SessionConfig.
	Trace *obs.SessionTrace
}

// validate rejects malformed requests before any wire traffic, so a
// bad request never desynchronises an open session.
func (req Request) validate() error {
	if len(req.Matrix) == 0 || len(req.Matrix[0]) == 0 {
		return fmt.Errorf("protocol: empty server matrix")
	}
	cols := len(req.Matrix[0])
	for i, row := range req.Matrix {
		if len(row) != cols {
			return fmt.Errorf("protocol: row %d has %d columns, want %d", i, len(row), cols)
		}
	}
	if err := req.OT.validate(); err != nil {
		return err
	}
	switch req.Mode {
	case ModeMatVec:
	case ModeSerial:
		if len(req.Matrix) != 1 {
			return fmt.Errorf("protocol: serial mode serves exactly one row, got %d", len(req.Matrix))
		}
		if req.OT != OTPerRound {
			return fmt.Errorf("protocol: serial mode requires per-round OT, got %s", req.OT)
		}
	default:
		return fmt.Errorf("protocol: unknown request mode %d", int(req.Mode))
	}
	if req.GarbleWorkers < 0 {
		return fmt.Errorf("protocol: negative garble worker count %d", req.GarbleWorkers)
	}
	return nil
}

// Response is the server-side outcome of one request.
type Response struct {
	// Values is the client-reported result, one per matrix row.
	Values []int64
	// Stats is the accelerator accounting for the request.
	Stats Stats
}

// Serve runs one request over a fresh connection: versioned handshake,
// one OT setup, the request, and the client's end-of-session marker.
// To amortise the handshake and OT setup over many requests, use
// NewSession instead.
func (s *Server) Serve(conn wire.Conn, req Request) (resp *Response, err error) {
	kind := "matvec"
	if req.Mode == ModeSerial {
		kind = "serial"
	}
	ss := s.beginSession(kind, conn, req.Trace)
	defer func() { ss.finish(err) }()
	if err = req.validate(); err != nil {
		return nil, err
	}
	sess, err := s.startSession(context.Background(), conn, ss, req.GarbleWorkers, s.timeouts)
	if err != nil {
		return nil, err
	}
	resp, err = sess.Serve(req)
	if err != nil {
		return nil, err
	}
	// Drain the client's end-of-session marker so the stream closes in
	// a known state (through the session's timed connection, so a peer
	// that never sends it costs one budget, not forever); a disconnect
	// here is fine, the work is done.
	var open reqOpen
	if derr := recvGob(sess.conn, &open); derr == nil && open.Op != opEnd {
		return nil, fmt.Errorf("protocol: client opened a %q request on a single-request session", open.Op)
	}
	return resp, nil
}

// addStats accumulates one run's accounting into the request aggregate
// (the fields the matvec paths sum; utilization stays schedule-derived).
func addStats(agg *Stats, st *Stats) {
	agg.MACs += st.MACs
	agg.Cycles += st.Cycles
	agg.Stages += st.Stages
	agg.TablesGarbled += st.TablesGarbled
	agg.TablesScheduled += st.TablesScheduled
	agg.TableBytes += st.TableBytes
	agg.IdleSlots += st.IdleSlots
	agg.RNGBitsDrawn += st.RNGBitsDrawn
	agg.ModeledTime += st.ModeledTime
	agg.PCIeTime += st.PCIeTime
}

func checkRange(v int64, width int, signed bool) error {
	if signed {
		lo, hi := -(int64(1) << (width - 1)), int64(1)<<(width-1)-1
		if v < lo || v > hi {
			return fmt.Errorf("value %d outside signed %d-bit range", v, width)
		}
		return nil
	}
	if v < 0 || v >= int64(1)<<width {
		return fmt.Errorf("value %d outside unsigned %d-bit range", v, width)
	}
	return nil
}

// maxRowSpans bounds the per-row garbling spans retained in one
// session trace; larger matrices keep only the aggregate rounds span.
const maxRowSpans = 64

// session is the per-session observability state shared by every
// serving path. Every field is nil-safe, so the uninstrumented server
// pays only a few nil checks. finish is idempotent: the first caller
// (error return or Close) records the terminal state.
type session struct {
	tr     *obs.SessionTrace
	reg    *obs.Registry
	active *obs.Gauge
	start  time.Time
	kind   string
	once   bool
}

func (s *Server) beginSession(kind string, conn wire.Conn, tr *obs.SessionTrace) *session {
	s.started.Store(true)
	reg := s.obs.Metrics()
	if tr == nil {
		tr = s.obs.Traces().StartSession(kind, wire.PeerAddr(conn))
	}
	reg.Counter("sessions_total", "protocol sessions accepted", obs.L("kind", kind)).Inc()
	active := reg.Gauge("sessions_active", "protocol sessions currently in flight")
	active.Add(1)
	return &session{tr: tr, reg: reg, active: active, start: time.Now(), kind: kind}
}

// finish closes the session once; later calls are no-ops.
func (ss *session) finish(err error) {
	if ss.once {
		return
	}
	ss.once = true
	ss.active.Add(-1)
	ss.tr.Finish(err)
	ss.reg.Histogram("session_seconds", "end-to-end session duration", nil,
		obs.L("kind", ss.kind)).Observe(time.Since(ss.start).Seconds())
	if err != nil {
		ss.reg.Counter("session_errors_total", "sessions that ended in error",
			obs.L("kind", ss.kind)).Inc()
	}
}

// observeOTSetup times the base-OT + IKNP extension setup.
func (ss *session) observeOTSetup(d time.Duration) {
	ss.reg.Histogram("ot_setup_seconds", "base-OT plus IKNP extension setup time", nil).
		Observe(d.Seconds())
}

// observeRequest times one completed matvec request end to end (header
// through decode), labelled by its precompute outcome ("hit", "miss",
// "off") — the per-request service-time distribution the capacity-model
// calibrator (internal/capmodel) samples simulated work from.
func (ss *session) observeRequest(precompute string, d time.Duration) {
	ss.reg.Histogram("request_seconds", "completed matvec request duration (header through decode)",
		nil, obs.L("precompute", precompute)).Observe(d.Seconds())
}
