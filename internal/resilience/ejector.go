package resilience

import (
	"sort"
	"sync"
	"time"
)

// EjectorConfig shapes one Ejector. The zero value resolves to the
// defaults noted per field.
type EjectorConfig struct {
	// Alpha is the EWMA smoothing factor in (0, 1]: the weight of the
	// newest sample. Default 0.3.
	Alpha float64
	// K is the outlier cutoff: a backend whose EWMA exceeds K times
	// the fleet median is ejected. Default 3.
	K float64
	// MinSamples is how many samples a backend needs before its EWMA
	// is trusted — for the median and for ejection. Default 5.
	MinSamples int
	// MinFleet is how many sample-bearing backends a sweep needs
	// before a median is meaningful; below it nothing ejects. With
	// two backends "median" is their midpoint and a single slow node
	// is half the fleet — ejecting on that signal is a coin flip.
	// Default 3.
	MinFleet int
	// Floor is the absolute latency below which a backend never
	// ejects, however skewed the ratio: at sub-floor latencies the
	// "outlier" is measurement noise. Default 1ms.
	Floor time.Duration
	// Cooldown is how long an ejection lasts. On expiry the backend
	// re-enters on probation: its sample count restarts, so it must
	// earn MinSamples fresh observations before it can eject again —
	// otherwise a stale-high EWMA (no traffic while ejected) would
	// re-eject it forever. Default 10s.
	Cooldown time.Duration
	// Now is the clock; tests inject a fake. Default time.Now.
	Now func() time.Time
}

func (c EjectorConfig) withDefaults() EjectorConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.K <= 1 {
		c.K = 3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.MinFleet <= 0 {
		c.MinFleet = 3
	}
	if c.Floor <= 0 {
		c.Floor = time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// entry is one backend's latency state.
type entry struct {
	ewma  float64 // seconds
	n     int     // samples since creation or last probation reset
	until time.Time
}

// Ejector tracks a latency EWMA per backend and temporarily ejects
// backends whose EWMA is an outlier against the fleet median. It
// exists for the failure shape probes cannot see: a backend that
// answers /healthz promptly while serving sessions 10× slower than its
// peers. Ejection is advisory — the gateway demotes ejected backends
// to last-resort rather than removing them, so a fleet that is
// uniformly slow still serves.
type Ejector struct {
	cfg EjectorConfig

	mu sync.Mutex
	m  map[string]*entry
}

// NewEjector builds an empty ejector.
func NewEjector(cfg EjectorConfig) *Ejector {
	return &Ejector{cfg: cfg.withDefaults(), m: make(map[string]*entry)}
}

// Observe folds one latency sample (typically dial→first-frame of a
// session handshake, measured by the relay) into the backend's EWMA.
func (e *Ejector) Observe(id string, d time.Duration) {
	if d < 0 {
		return
	}
	s := d.Seconds()
	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.m[id]
	if en == nil {
		en = &entry{}
		e.m[id] = en
	}
	e.expire(en, e.cfg.Now())
	if en.n == 0 {
		en.ewma = s
	} else {
		en.ewma = e.cfg.Alpha*s + (1-e.cfg.Alpha)*en.ewma
	}
	en.n++
}

// expire handles probation: an ejection that ran out resets the
// sample count so the backend must re-earn trust in its EWMA before
// it can eject again. Callers hold mu.
func (e *Ejector) expire(en *entry, now time.Time) {
	if !en.until.IsZero() && !now.Before(en.until) {
		en.until = time.Time{}
		en.n = 0
	}
}

// Ejected reports whether the backend is currently weighted out.
func (e *Ejector) Ejected(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.m[id]
	if en == nil {
		return false
	}
	e.expire(en, e.cfg.Now())
	return !en.until.IsZero()
}

// EWMA reports the backend's current latency estimate; ok is false
// before the first sample.
func (e *Ejector) EWMA(id string) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.m[id]
	if en == nil || (en.n == 0 && en.ewma == 0) {
		return 0, false
	}
	return time.Duration(en.ewma * float64(time.Second)), true
}

// Sweep evaluates the outlier rule once — the probe loop's tick —
// and returns the ids ejected by this pass (already-ejected backends
// are extended silently). A backend ejects when at least MinFleet
// backends carry MinSamples samples, the fleet median is known, and
// its EWMA exceeds both K·median and the noise floor.
func (e *Ejector) Sweep() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.cfg.Now()
	for _, en := range e.m {
		e.expire(en, now)
	}
	var ewmas []float64
	for _, en := range e.m {
		if en.n >= e.cfg.MinSamples {
			ewmas = append(ewmas, en.ewma)
		}
	}
	if len(ewmas) < e.cfg.MinFleet {
		return nil
	}
	sort.Float64s(ewmas)
	median := ewmas[len(ewmas)/2]
	if len(ewmas)%2 == 0 {
		median = (ewmas[len(ewmas)/2-1] + ewmas[len(ewmas)/2]) / 2
	}
	if median <= 0 {
		return nil
	}
	cutoff := e.cfg.K * median
	floor := e.cfg.Floor.Seconds()
	var ejected []string
	for id, en := range e.m {
		if en.n < e.cfg.MinSamples || en.ewma <= cutoff || en.ewma <= floor {
			continue
		}
		fresh := en.until.IsZero()
		en.until = now.Add(e.cfg.Cooldown)
		if fresh {
			ejected = append(ejected, id)
		}
	}
	sort.Strings(ejected)
	return ejected
}
