package gc

import (
	"bytes"
	"crypto/rand"
	"reflect"
	"testing"

	"maxelerator/internal/circuit"
	"maxelerator/internal/label"
)

func sampleMaterial(t *testing.T, seqState bool) *Material {
	t.Helper()
	var c *circuit.Circuit
	if seqState {
		c = circuit.MustMAC(circuit.MACConfig{Width: 4, AccWidth: 8})
	} else {
		b := circuit.NewBuilder()
		x := b.GarblerInputs(3)
		y := b.EvaluatorInputs(3)
		b.Outputs(b.GEq(x, y), b.Equal(x, y))
		c = b.MustBuild()
	}
	g, err := NewGarbler(DefaultParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := g.Garble(c, GarbleOptions{GarblerInputs: make([]bool, c.NGarbler), TweakBase: 777})
	if err != nil {
		t.Fatal(err)
	}
	return &gb.Material
}

func TestMaterialCodecRoundTrip(t *testing.T) {
	for _, seq := range []bool{false, true} {
		m := sampleMaterial(t, seq)
		enc, err := MarshalMaterial(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalMaterial(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("seq=%v: round trip mismatch", seq)
		}
	}
}

func TestMaterialCodecDeterministic(t *testing.T) {
	m := sampleMaterial(t, false)
	a, err := MarshalMaterial(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalMaterial(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestMaterialCodecRejectsTruncation(t *testing.T) {
	m := sampleMaterial(t, true)
	enc, err := MarshalMaterial(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := UnmarshalMaterial(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestMaterialCodecRejectsTrailingBytes(t *testing.T) {
	m := sampleMaterial(t, false)
	enc, err := MarshalMaterial(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalMaterial(append(enc, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestMaterialCodecRejectsBadVersion(t *testing.T) {
	m := sampleMaterial(t, false)
	enc, err := MarshalMaterial(m)
	if err != nil {
		t.Fatal(err)
	}
	enc[0] = 99
	if _, err := UnmarshalMaterial(enc); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestMaterialCodecRejectsHugeCounts(t *testing.T) {
	// A corrupt table count must not drive a huge allocation.
	enc := []byte{codecVersion}
	enc = append(enc, make([]byte, 8)...)             // tweak
	enc = append(enc, 0xff, 0xff, 0xff, 0xff)         // table count = 2^32-1
	if _, err := UnmarshalMaterial(enc); err == nil { // must reject
		t.Fatal("huge table count accepted")
	}
}

func TestMaterialCodecPreservesEvaluationResult(t *testing.T) {
	// Full pipeline: garble, serialise, parse, evaluate.
	b := circuit.NewBuilder()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	b.OutputWord(b.Add(x, y))
	c := b.MustBuild()
	p := DefaultParams()
	g, err := NewGarbler(p, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := g.Garble(c, GarbleOptions{GarblerInputs: circuit.Uint64ToBits(57, 8)})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := MarshalMaterial(&gb.Material)
	if err != nil {
		t.Fatal(err)
	}
	m, err := UnmarshalMaterial(enc)
	if err != nil {
		t.Fatal(err)
	}
	yBits := circuit.Uint64ToBits(66, 8)
	active := make([]label.Label, 8)
	for i := range active {
		active[i] = gb.EvalPairs[i].Get(yBits[i])
	}
	res, err := Evaluate(p, c, m, active, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := circuit.BitsToUint64(res.Outputs); got != 57+66 {
		t.Fatalf("decoded sum = %d", got)
	}
}

func FuzzUnmarshalMaterial(f *testing.F) {
	m := &Material{
		Tables:        [][]label.Label{{label.MustRandom(), label.MustRandom()}},
		GarblerActive: []label.Label{label.MustRandom()},
		OutputPerm:    []bool{true, false, true},
		TweakBase:     7,
	}
	seed, _ := MarshalMaterial(m)
	f.Add(seed)
	f.Add([]byte{codecVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalMaterial(data)
		if err != nil {
			return
		}
		enc, err := MarshalMaterial(m)
		if err != nil {
			t.Fatalf("accepted material failed to re-encode: %v", err)
		}
		back, err := UnmarshalMaterial(enc)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatal("re-encoding changed the material")
		}
	})
}
