package circuit

import (
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func TestReLU(t *testing.T) {
	const w = 8
	b := NewBuilder()
	x := b.GarblerInputs(w)
	b.EvaluatorInputs(0)
	b.OutputWord(b.ReLU(x))
	c := b.MustBuild()
	f := func(v int8) bool {
		bits, err := c.Eval(Int64ToBits(int64(v), w), nil)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(v)
		if want < 0 {
			want = 0
		}
		return BitsToInt64(bits) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReLUCostOneANDPerBit(t *testing.T) {
	b := NewBuilder()
	x := b.GarblerInputs(16)
	b.EvaluatorInputs(0)
	b.OutputWord(b.ReLU(x))
	if got := b.MustBuild().Stats().ANDs; got != 16 {
		t.Fatalf("16-bit ReLU uses %d ANDs, want 16", got)
	}
}

func TestSignedMinMax(t *testing.T) {
	const w = 8
	b := NewBuilder()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.OutputWord(b.MaxS(x, y))
	b.OutputWord(b.MinS(x, y))
	c := b.MustBuild()
	f := func(xv, yv int8) bool {
		bits, err := c.Eval(Int64ToBits(int64(xv), w), Int64ToBits(int64(yv), w))
		if err != nil {
			t.Fatal(err)
		}
		mx, mn := int64(xv), int64(yv)
		if mn > mx {
			mx, mn = mn, mx
		}
		return BitsToInt64(bits[:w]) == mx && BitsToInt64(bits[w:]) == mn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPool(t *testing.T) {
	const w = 8
	rng := mrand.New(mrand.NewSource(5))
	for _, n := range []int{1, 2, 3, 4, 7} {
		b := NewBuilder()
		window := make([]Word, n)
		for i := range window {
			window[i] = b.GarblerInputs(w)
		}
		b.EvaluatorInputs(0)
		b.OutputWord(b.MaxPool(window))
		c := b.MustBuild()
		for trial := 0; trial < 10; trial++ {
			var g []bool
			want := int64(-1 << 62)
			for i := 0; i < n; i++ {
				v := int64(rng.Intn(256) - 128)
				if v > want {
					want = v
				}
				g = append(g, Int64ToBits(v, w)...)
			}
			bits, err := c.Eval(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := BitsToInt64(bits); got != want {
				t.Fatalf("n=%d: maxpool = %d, want %d", n, got, want)
			}
		}
	}
}

func TestArgMax(t *testing.T) {
	const w = 8
	rng := mrand.New(mrand.NewSource(6))
	for _, n := range []int{1, 2, 3, 5, 8} {
		b := NewBuilder()
		cands := make([]Word, n)
		for i := range cands {
			cands[i] = b.GarblerInputs(w)
		}
		b.EvaluatorInputs(0)
		b.OutputWord(b.ArgMax(cands))
		c := b.MustBuild()
		for trial := 0; trial < 10; trial++ {
			var g []bool
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(rng.Intn(256) - 128)
				g = append(g, Int64ToBits(vals[i], w)...)
			}
			wantIdx := 0
			for i, v := range vals {
				if v > vals[wantIdx] {
					wantIdx = i
				}
			}
			bits, err := c.Eval(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := BitsToUint64(bits); got != uint64(wantIdx) {
				t.Fatalf("n=%d vals=%v: argmax = %d, want %d", n, vals, got, wantIdx)
			}
		}
	}
}

func TestArgMaxTiesPickLowerIndex(t *testing.T) {
	const w = 6
	b := NewBuilder()
	cands := make([]Word, 4)
	for i := range cands {
		cands[i] = b.GarblerInputs(w)
	}
	b.EvaluatorInputs(0)
	b.OutputWord(b.ArgMax(cands))
	c := b.MustBuild()
	var g []bool
	for range cands {
		g = append(g, Int64ToBits(5, w)...) // all equal
	}
	bits, err := c.Eval(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := BitsToUint64(bits); got != 0 {
		t.Fatalf("all-ties argmax = %d, want 0", got)
	}
}

func TestMLPanicsOnBadShapes(t *testing.T) {
	for name, f := range map[string]func(b *Builder){
		"ReLU-empty":    func(b *Builder) { b.ReLU(Word{}) },
		"MaxS-mismatch": func(b *Builder) { x := b.GarblerInputs(4); b.MaxS(x, x[:2]) },
		"MinS-empty":    func(b *Builder) { b.MinS(Word{}, Word{}) },
		"MaxPool-empty": func(b *Builder) { b.MaxPool(nil) },
		"ArgMax-empty":  func(b *Builder) { b.ArgMax(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			b := NewBuilder()
			b.GarblerInputs(4)
			f(b)
		}()
	}
}
