package faultconn

import (
	"errors"
	"net"
	"testing"
	"time"

	"maxelerator/internal/wire"
)

func TestPassThroughWithoutFaults(t *testing.T) {
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	fc := New(a, Options{})
	if err := fc.SendMsg([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.RecvMsg()
	if err != nil || string(msg) != "hello" {
		t.Fatalf("recv = %q, %v", msg, err)
	}
	if err := b.SendMsg([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if msg, err := fc.RecvMsg(); err != nil || string(msg) != "back" {
		t.Fatalf("recv = %q, %v", msg, err)
	}
	if s, r := fc.Ops(); s != 1 || r != 1 {
		t.Fatalf("ops = %d sends %d recvs", s, r)
	}
}

func TestStallReleasedByClose(t *testing.T) {
	a, b := wire.Pipe()
	defer b.Close()
	fc := New(a, Options{StallOnSend: 2})
	if err := fc.SendMsg([]byte("first")); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- fc.SendMsg([]byte("second")) }()
	select {
	case err := <-errc:
		t.Fatalf("stalled send returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("released stall error = %v, want ErrInjected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not release the stalled send")
	}
	// Send 1 was delivered; the stalled send 2 never reached the peer.
	if msg, err := b.RecvMsg(); err != nil || string(msg) != "first" {
		t.Fatalf("peer drain = %q, %v", msg, err)
	}
	if msg, err := b.RecvMsg(); err == nil {
		t.Fatalf("stalled message leaked to the peer: %q", msg)
	}
}

func TestErrAndCloseTriggers(t *testing.T) {
	a, b := wire.Pipe()
	defer b.Close()
	fc := New(a, Options{ErrOnSend: 1, CloseOnRecv: 1})
	if err := fc.SendMsg([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("send 1 = %v, want ErrInjected", err)
	}
	// The injected error did not touch the wire: send 2 goes through.
	if err := fc.SendMsg([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.RecvMsg(); !errors.Is(err, ErrInjected) {
		t.Fatalf("recv 1 = %v, want ErrInjected", err)
	}
	// CloseOnRecv tore the connection down for the peer too: after
	// draining the message that preceded the fault, the peer sees a
	// disconnect.
	if msg, err := b.RecvMsg(); err != nil || string(msg) != "y" {
		t.Fatalf("peer drain = %q, %v", msg, err)
	}
	if _, err := b.RecvMsg(); !wire.IsDisconnect(err) {
		t.Fatalf("peer after injected close = %v, want disconnect", err)
	}
}

func TestDelayIsDeterministic(t *testing.T) {
	elapsed := func(seed int64) time.Duration {
		a, b := wire.Pipe()
		defer a.Close()
		defer b.Close()
		fc := New(a, Options{Seed: seed, SendDelay: time.Millisecond, Jitter: 20 * time.Millisecond})
		start := time.Now()
		if err := fc.SendMsg([]byte("x")); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	d1, d2 := elapsed(7), elapsed(7)
	// Same seed, same jitter draw; allow generous scheduling noise but
	// require the base+jitter floor.
	if d1 < time.Millisecond || d2 < time.Millisecond {
		t.Fatalf("delays below the base latency: %s, %s", d1, d2)
	}
	diff := d1 - d2
	if diff < 0 {
		diff = -diff
	}
	if diff > 15*time.Millisecond {
		t.Fatalf("same-seed delays diverge: %s vs %s", d1, d2)
	}
}

func TestStreamCorruptLengthPrefix(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	// Write 1 is the first frame's 4-byte length prefix.
	fs := NewStream(client)
	fs.CorruptWrite = 1
	faulty := wire.NewStreamConn(fs)
	errc := make(chan error, 1)
	go func() { errc <- faulty.SendMsg([]byte("payload")) }()
	sc := wire.NewStreamConn(server)
	_, err := sc.RecvMsg()
	if err == nil {
		t.Fatal("corrupt length prefix accepted")
	}
	if wire.IsDisconnect(err) || wire.IsTimeout(err) {
		t.Fatalf("hostile prefix misclassified: %v", err)
	}
	server.Close()
	<-errc
}

func TestStreamCutAfterWrite(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	// Cut after write 1: the first frame's length prefix lands intact,
	// the payload never follows — the boundary cut the vectored framing
	// path can hit between header and payload.
	fs := NewStream(client)
	fs.CutAfterWrite = 1
	faulty := wire.NewStreamConn(fs)
	errc := make(chan error, 1)
	go func() { errc <- faulty.SendMsg([]byte("payload")) }()
	sc := wire.NewStreamConn(server)
	if _, err := sc.RecvMsg(); !wire.IsDisconnect(err) {
		t.Fatalf("header-only frame = %v, want disconnect classification", err)
	}
	// The header write itself succeeded; the sender fails on the body.
	if serr := <-errc; serr == nil {
		t.Fatal("sender reported success across the cut")
	}
	if got := fs.Writes(); got != 2 {
		t.Fatalf("writes = %d, want 2 (header forwarded, body refused)", got)
	}
}

func TestStreamCutMidFrame(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	// Write 2 is the first frame's body: forward half, then cut.
	fs := NewStream(client)
	fs.CutWrite = 2
	faulty := wire.NewStreamConn(fs)
	errc := make(chan error, 1)
	go func() { errc <- faulty.SendMsg([]byte("0123456789abcdef")) }()
	sc := wire.NewStreamConn(server)
	_, err := sc.RecvMsg()
	if err == nil {
		t.Fatal("partial frame accepted")
	}
	if !wire.IsDisconnect(err) {
		t.Fatalf("mid-frame cut = %v, want disconnect classification", err)
	}
	if serr := <-errc; !errors.Is(serr, ErrInjected) {
		t.Fatalf("cut sender error = %v, want ErrInjected", serr)
	}
}

// TestFlakyIsSeededAndProportional: the per-op loss mode fails roughly
// p of the ops, reproducibly for a given seed, and never touches the
// wire on a faulted op.
func TestFlakyIsSeededAndProportional(t *testing.T) {
	run := func(seed int64) (failed []int) {
		a, b := wire.Pipe()
		defer a.Close()
		defer b.Close()
		go func() { // drain whatever gets through
			for {
				if _, err := b.RecvMsg(); err != nil {
					return
				}
			}
		}()
		fc := New(a, Flaky(seed, 0.3))
		for i := 0; i < 200; i++ {
			if err := fc.SendMsg([]byte("m")); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("op %d: %v, want ErrInjected", i, err)
				}
				failed = append(failed, i)
			}
		}
		return failed
	}
	first := run(7)
	if n := len(first); n < 30 || n > 90 {
		t.Fatalf("p=0.3 failed %d/200 ops — not plausibly proportional", n)
	}
	second := run(7)
	if len(first) != len(second) {
		t.Fatalf("same seed, different outcomes: %d vs %d failures", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed, different failure indices at %d: %d vs %d", i, first[i], second[i])
		}
	}
	third := run(8)
	different := len(third) != len(first)
	for i := 0; !different && i < len(first); i++ {
		different = first[i] != third[i]
	}
	if !different {
		t.Fatal("different seeds produced identical failure patterns")
	}
}

// TestStallFirstRead: the accepted-but-mute peer — the very first
// receive blocks until close, later reads are clean.
func TestStallFirstRead(t *testing.T) {
	a, b := wire.Pipe()
	defer b.Close()
	fc := New(a, Options{StallFirstRead: true})
	if err := b.SendMsg([]byte("waiting")); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := fc.RecvMsg()
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("first read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("released first-read stall = %v, want ErrInjected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not release the stalled first read")
	}
}
