package protocol

// Serial-mode requests: the bit-serial datapath streamed over the
// wire, one garbled *stage* at a time. This is §3's memory-constrained
// client taken to the architecture's natural granularity — the
// evaluator holds the labels of exactly one stage (a single input bit
// plus carried state labels) instead of a full round, at the cost of
// one OT round trip per stage.

import (
	"context"
	"fmt"

	"maxelerator/internal/circuit"
	"maxelerator/internal/maxsim"
	"maxelerator/internal/ot"
	"maxelerator/internal/seqgc"
	"maxelerator/internal/serial"
)

// serveSerial is the serial-mode datapath: one request, one row, one
// garbled stage per wire exchange. Garbling is inherently sequential
// (every stage chains carried state labels), so the worker pool does
// not apply.
func (sess *ServerSession) serveSerial(ctx context.Context, req Request) (*Response, error) {
	x := req.Matrix[0]
	cfg := sess.srv.cfg
	ss := sess.ss
	sess.tc.enterPhase(phaseRounds, sess.to.IO)
	sim, err := maxsim.New(cfg)
	if err != nil {
		return nil, err
	}

	var ckt *circuit.Circuit
	var layout serial.Layout
	if cfg.Signed {
		ckt, layout, err = serial.MACSigned(cfg.Width)
	} else {
		ckt, layout, err = serial.MAC(cfg.Width)
	}
	if err != nil {
		return nil, err
	}

	ss.tr.SetAttr("cols", fmt.Sprint(len(x)))
	ss.tr.SetAttr("stages_per_mac", fmt.Sprint(layout.StagesPerMAC))
	hdr := sess.header(req, len(x))
	hdr.StagesPerMAC = layout.StagesPerMAC
	if err := sendGob(sess.conn, hdr); err != nil {
		return nil, err
	}
	gs, err := seqgc.NewGarblerSession(cfg.Params, cfg.Rand, ckt)
	if err != nil {
		return nil, err
	}

	rounds := ss.tr.StartSpan("rounds")
	defer rounds.End()
	var agg Stats
	for round, xi := range x {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("protocol: rounds phase interrupted at round %d: %w", round, err)
		}
		if err := checkRange(xi, cfg.Width, cfg.Signed); err != nil {
			return nil, fmt.Errorf("protocol: round %d: %w", round, err)
		}
		xBits := circuit.Int64ToBits(xi, cfg.Width)
		for stage := 0; stage < layout.StagesPerMAC; stage++ {
			g := xBits
			if cfg.Signed {
				isLast, vj, corr, notFirst := layout.SignedStageInputs(stage)
				g = append(append([]bool{}, xBits...), isLast, vj, corr, notFirst)
			}
			gb, err := gs.NextRoundWithEvalLabels(g, nil)
			if err != nil {
				return nil, fmt.Errorf("protocol: round %d stage %d: %w", round, stage, err)
			}
			if err := sendMaterial(sess.conn, &gb.Material); err != nil {
				return nil, err
			}
			if err := ot.SendLabels(sess.sender, gb.EvalPairs); err != nil {
				return nil, err
			}
			agg.TablesGarbled += uint64(len(gb.Material.Tables))
			agg.TableBytes += uint64(gb.Material.CiphertextBytes())
			agg.Stages++
		}
		agg.MACs++
	}
	rounds.End()
	agg.TablesScheduled = agg.TablesGarbled
	agg.Cycles = agg.Stages * 3
	agg.ModeledTime = cfg.Device.CyclesToDuration(agg.Cycles)
	agg.PCIeTime = cfg.PCIe.TransferTime(int(agg.TableBytes))
	agg.CoreUtilization = 1
	// Hand-assembled Stats: publish them explicitly (no
	// GarbleDotProduct on this path).
	sim.RecordStats(&agg)

	vals, err := sess.readResult(1)
	if err != nil {
		return nil, err
	}
	return &Response{Values: vals, Stats: agg}, nil
}
