package maxsim

import (
	"strconv"
	"strings"
	"testing"

	"maxelerator/internal/obs"
	"maxelerator/internal/sched"
)

func TestGarbleDotProductRecordsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := sim(t, Config{Width: 16, Signed: true, Metrics: reg})
	run, err := s.GarbleDotProduct([]int64{3, -5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("macs_total", "").Value(); got != 3 {
		t.Fatalf("macs_total = %d", got)
	}
	if got := reg.Counter("cycles_total", "").Value(); got != run.Stats.Cycles {
		t.Fatalf("cycles_total = %d, want %d", got, run.Stats.Cycles)
	}
	if got := reg.Counter("tables_garbled_total", "").Value(); got != run.Stats.TablesGarbled {
		t.Fatalf("tables_garbled_total = %d, want %d", got, run.Stats.TablesGarbled)
	}
	if got := reg.Counter("idle_slots_total", "").Value(); got != run.Stats.IdleSlots {
		t.Fatalf("idle_slots_total = %d, want %d", got, run.Stats.IdleSlots)
	}
	// b=16 has 2 idle slots per stage; the per-core family must sum to
	// the aggregate.
	var perCore uint64
	for i := 0; i < s.Schedule().NumCores(); i++ {
		perCore += reg.Counter("core_idle_slots_total", "", obs.L("core", strconv.Itoa(i))).Value()
	}
	if perCore != run.Stats.IdleSlots {
		t.Fatalf("per-core idle sum %d != aggregate %d", perCore, run.Stats.IdleSlots)
	}
}

func TestTraceRecordsStallMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := sim(t, Config{Width: 8, Metrics: reg})
	res, err := s.Trace(TraceConfig{MACs: 10, DrainBytesPerCycle: 4, MemoryBytesPerCore: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles == 0 {
		t.Fatal("expected a stalling configuration")
	}
	if got := reg.Counter("stall_cycles_total", "").Value(); got != res.StallCycles {
		t.Fatalf("stall_cycles_total = %d, want %d", got, res.StallCycles)
	}
	if got := reg.Counter("trace_cycles_total", "").Value(); got != res.Cycles {
		t.Fatalf("trace_cycles_total = %d, want %d", got, res.Cycles)
	}
	if got := reg.Counter("pcie_drained_bytes_total", "").Value(); got != res.BytesDrained {
		t.Fatalf("pcie_drained_bytes_total = %d, want %d", got, res.BytesDrained)
	}
	if got := reg.Gauge("peak_memory_bytes", "").Value(); got != int64(res.PeakOccupancyBytes) {
		t.Fatalf("peak_memory_bytes = %d, want %d", got, res.PeakOccupancyBytes)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `core_tables_total{core="0"}`) {
		t.Fatalf("per-core table counters missing:\n%s", sb.String())
	}
}

func TestMatMulStatsDoesNotRecord(t *testing.T) {
	// MatMulStats is a what-if query: calling it must not pollute the
	// live counters (the correlated protocol path publishes explicitly
	// via RecordStats instead).
	reg := obs.NewRegistry()
	s := sim(t, Config{Width: 8, Metrics: reg})
	if _, err := s.MatMulStats(4, 4, 2); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("macs_total", "").Value(); got != 0 {
		t.Fatalf("MatMulStats recorded %d MACs", got)
	}
}

func TestNilRegistryIsFree(t *testing.T) {
	s := sim(t, Config{Width: 8})
	if _, err := s.GarbleDotProduct([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Trace(TraceConfig{MACs: 2}); err != nil {
		t.Fatal(err)
	}
	// Sanity on construction-time grid accounting.
	var idle uint64
	for _, n := range s.idlePerStage {
		idle += n
	}
	if int(idle) != s.Schedule().IdleSlotsPerStage() {
		t.Fatalf("idlePerStage sum %d != schedule %d", idle, s.Schedule().IdleSlotsPerStage())
	}
	_ = sched.CyclesPerStage
}
