package circuit

import (
	"math/rand"
	"testing"
)

func TestMACConfigValidation(t *testing.T) {
	if _, err := MAC(MACConfig{Width: 0, AccWidth: 8}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := MAC(MACConfig{Width: 8, AccWidth: 8}); err == nil {
		t.Fatal("narrow accumulator accepted")
	}
	if _, err := MACCombinational(MACConfig{Width: -1, AccWidth: 0}); err == nil {
		t.Fatal("negative width accepted")
	}
	if _, err := DotProduct(MACConfig{Width: 8, AccWidth: 16}, 0); err == nil {
		t.Fatal("zero-length dot product accepted")
	}
}

func TestSequentialMACUnsigned(t *testing.T) {
	cfg := MACConfig{Width: 8, AccWidth: 24}
	c := MustMAC(cfg)
	rng := rand.New(rand.NewSource(1))
	var state []bool
	var want uint64
	for round := 0; round < 20; round++ {
		x := uint64(rng.Intn(256))
		a := uint64(rng.Intn(256))
		want = (want + x*a) & (1<<24 - 1)
		out, next, err := c.EvalRound(Uint64ToBits(x, 8), Uint64ToBits(a, 8), state)
		if err != nil {
			t.Fatal(err)
		}
		if got := BitsToUint64(out); got != want {
			t.Fatalf("round %d: acc = %d, want %d", round, got, want)
		}
		state = next
	}
}

func TestSequentialMACSigned(t *testing.T) {
	cfg := MACConfig{Width: 8, AccWidth: 20, Signed: true}
	c := MustMAC(cfg)
	rng := rand.New(rand.NewSource(7))
	var state []bool
	var want int64
	mask := int64(1)<<20 - 1
	for round := 0; round < 30; round++ {
		x := int64(rng.Intn(256) - 128)
		a := int64(rng.Intn(256) - 128)
		want += x * a
		out, next, err := c.EvalRound(Int64ToBits(x, 8), Int64ToBits(a, 8), state)
		if err != nil {
			t.Fatal(err)
		}
		if got := BitsToInt64(out); got&mask != want&mask {
			t.Fatalf("round %d: acc = %d, want %d", round, got, want)
		}
		state = next
	}
}

func TestMACCombinationalMatchesSequentialStep(t *testing.T) {
	cfg := MACConfig{Width: 8, AccWidth: 16, Signed: true}
	comb, err := MACCombinational(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		x := int64(rng.Intn(256) - 128)
		a := int64(rng.Intn(256) - 128)
		acc := int64(rng.Intn(1<<16) - 1<<15)
		g := append(Int64ToBits(x, 8), Int64ToBits(acc, 16)...)
		out, err := comb.Eval(g, Int64ToBits(a, 8))
		if err != nil {
			t.Fatal(err)
		}
		want := (acc + x*a) & (1<<16 - 1)
		if got := BitsToInt64(out) & (1<<16 - 1); got != want {
			t.Fatalf("comb MAC(%d,%d,%d) = %d, want %d", x, a, acc, got, want)
		}
	}
}

func TestDotProductMatchesPlaintext(t *testing.T) {
	cfg := MACConfig{Width: 6, AccWidth: 16, Signed: true}
	const n = 5
	c, err := DotProduct(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		var g, e []bool
		var want int64
		for i := 0; i < n; i++ {
			x := int64(rng.Intn(64) - 32)
			a := int64(rng.Intn(64) - 32)
			want += x * a
			g = append(g, Int64ToBits(x, 6)...)
			e = append(e, Int64ToBits(a, 6)...)
		}
		out, err := c.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		if got := BitsToInt64(out); got != want {
			t.Fatalf("dot product = %d, want %d", got, want)
		}
	}
}

func TestMACSerialAndTreeAgree(t *testing.T) {
	tree := MustMAC(MACConfig{Width: 8, AccWidth: 16})
	serial := MustMAC(MACConfig{Width: 8, AccWidth: 16, SerialMultiplier: true})
	rng := rand.New(rand.NewSource(11))
	var st1, st2 []bool
	for round := 0; round < 10; round++ {
		x := Uint64ToBits(uint64(rng.Intn(256)), 8)
		a := Uint64ToBits(uint64(rng.Intn(256)), 8)
		o1, n1, err := tree.EvalRound(x, a, st1)
		if err != nil {
			t.Fatal(err)
		}
		o2, n2, err := serial.EvalRound(x, a, st2)
		if err != nil {
			t.Fatal(err)
		}
		if BitsToUint64(o1) != BitsToUint64(o2) {
			t.Fatalf("round %d: tree %d != serial %d", round, BitsToUint64(o1), BitsToUint64(o2))
		}
		st1, st2 = n1, n2
	}
}

func TestMACStatsScaleWithWidth(t *testing.T) {
	prev := 0
	for _, w := range []int{8, 16, 32} {
		c := MustMAC(MACConfig{Width: w, AccWidth: 2 * w, Signed: true})
		ands := c.Stats().ANDs
		if ands <= prev {
			t.Fatalf("width %d MAC has %d ANDs, not more than previous %d", w, ands, prev)
		}
		prev = ands
	}
}

func TestMustMACPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMAC with bad config did not panic")
		}
	}()
	MustMAC(MACConfig{Width: 0, AccWidth: 0})
}
