package gc_test

import (
	"crypto/rand"
	"fmt"
	"log"

	"maxelerator/internal/circuit"
	"maxelerator/internal/gc"
	"maxelerator/internal/label"
)

// Garble a comparator and evaluate it: the garbler holds x, the
// evaluator holds y, and only x ≥ y is revealed.
func Example() {
	b := circuit.NewBuilder()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	b.Outputs(b.GEq(x, y))
	ckt := b.MustBuild()

	params := gc.DefaultParams()
	garbler, err := gc.NewGarbler(params, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	garbled, err := garbler.Garble(ckt, gc.GarbleOptions{
		GarblerInputs: circuit.Uint64ToBits(170, 8),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The evaluator obtains its input labels through OT; here the
	// pickup is in-process.
	yBits := circuit.Uint64ToBits(90, 8)
	active := make([]label.Label, len(yBits))
	for i, v := range yBits {
		active[i] = garbled.EvalPairs[i].Get(v)
	}
	res, err := gc.Evaluate(params, ckt, &garbled.Material, active, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("170 >= 90:", res.Outputs[0])
	fmt.Println("garbled tables:", len(garbled.Material.Tables))
	// Output:
	// 170 >= 90: true
	// garbled tables: 8
}
