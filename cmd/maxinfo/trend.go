package main

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"

	"maxelerator/internal/benchgrid"
	"maxelerator/internal/report"
)

// trendReport renders the repo's performance trajectory: every
// committed BENCH_PR*.json grid in the directory, ordered by PR number
// (version sort, so PR10 follows PR9), with each cell's p50 and
// tables/sec tracked across grids and the delta from first to last.
func trendReport(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_PR*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_PR*.json grids under %s", dir)
	}
	sort.Slice(paths, func(i, j int) bool { return versionLess(paths[i], paths[j]) })

	grids := make([]*benchgrid.Grid, len(paths))
	names := make([]string, len(paths))
	for i, p := range paths {
		g, err := benchgrid.Load(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		grids[i] = g
		names[i] = trimGridName(p)
	}

	// Cell universe: every key seen in any grid, in the order the last
	// grid lists them (newest layout wins), then any extinct keys.
	var keys []string
	seen := map[string]bool{}
	for i := len(grids) - 1; i >= 0; i-- {
		for _, c := range grids[i].Cells {
			if k := c.Key(); !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)

	fmt.Printf("perf trajectory across %d grids: %v\n", len(grids), names)
	p50 := report.NewTable("p50 latency (ms) per cell", append([]string{"cell"}, append(names, "Δ first→last")...)...)
	tps := report.NewTable("tables/sec per cell", append([]string{"cell"}, append(names, "Δ first→last")...)...)
	for _, k := range keys {
		rowP := []string{k}
		rowT := []string{k}
		var firstP, lastP, firstT, lastT float64
		haveFirst := false
		for _, g := range grids {
			c, ok := g.Cell(k)
			if !ok {
				rowP = append(rowP, "—")
				rowT = append(rowT, "—")
				continue
			}
			mark := ""
			if c.Degraded {
				mark = "*"
			}
			rowP = append(rowP, fmt.Sprintf("%.2f%s", c.P50Ms, mark))
			rowT = append(rowT, fmt.Sprintf("%.0f%s", c.TablesPerSec, mark))
			if !haveFirst {
				firstP, firstT, haveFirst = c.P50Ms, c.TablesPerSec, true
			}
			lastP, lastT = c.P50Ms, c.TablesPerSec
		}
		rowP = append(rowP, deltaPct(firstP, lastP, haveFirst))
		rowT = append(rowT, deltaPct(firstT, lastT, haveFirst))
		p50.AddRow(rowP...)
		tps.AddRow(rowT...)
	}
	fmt.Println(p50)
	fmt.Println(tps)
	fmt.Println("cells marked * were measured degraded (mixed serving regime); Δ compares first and last grids carrying the cell")
	return nil
}

func deltaPct(first, last float64, have bool) string {
	if !have || first == 0 {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", (last-first)/first*100)
}

func trimGridName(p string) string {
	base := filepath.Base(p)
	if len(base) > len("BENCH_")+len(".json") {
		return base[len("BENCH_") : len(base)-len(".json")]
	}
	return base
}

// versionLess compares paths with `sort -V` semantics: digit runs
// compare numerically, everything else byte-wise — so BENCH_PR10 sorts
// after BENCH_PR9, not between PR1 and PR2.
func versionLess(a, b string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ca, cb := a[i], b[j]
		if isDigit(ca) && isDigit(cb) {
			ia, na := scanNumber(a, i)
			ib, nb := scanNumber(b, j)
			if na != nb {
				return na < nb
			}
			i, j = ia, ib
			continue
		}
		if ca != cb {
			return ca < cb
		}
		i++
		j++
	}
	return len(a)-i < len(b)-j
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// scanNumber reads the digit run starting at i, returning the index
// past it and its numeric value.
func scanNumber(s string, i int) (int, uint64) {
	start := i
	for i < len(s) && isDigit(s[i]) {
		i++
	}
	n, _ := strconv.ParseUint(s[start:i], 10, 64)
	return i, n
}
