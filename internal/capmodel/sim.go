package capmodel

import (
	"container/heap"
	"math/rand"

	"maxelerator/internal/load"
)

// Fleet describes the serving configuration under simulation — the
// knobs an operator actually turns on maxd/maxgw.
type Fleet struct {
	// Backends is the number of maxd instances behind the gateway;
	// sessions route round-robin (the gateway's least-loaded choice
	// converges to round-robin under a uniform mix).
	Backends int `json:"backends"`
	// MaxSessions is each backend's -max-sessions; 0 = unlimited.
	MaxSessions int `json:"max_sessions"`
	// AdmissionWaitSec is each backend's -admission-wait in seconds;
	// with MaxSessions > 0, a session queuing longer is shed BUSY.
	AdmissionWaitSec float64 `json:"admission_wait_sec"`
	// CPUs is the compute parallelism per backend: concurrent OT
	// setups plus request services in flight (default 1).
	CPUs int `json:"cpus"`
	// PoolDepth is the precompute pool size per shape (-precompute-pool);
	// 0 disables the pool (every request garbles inline).
	PoolDepth int `json:"pool_depth"`
	// RefillWorkers is the background pre-garbling parallelism per
	// backend (default 1, matching the engine's default).
	RefillWorkers int `json:"refill_workers"`
	// WarmStart begins the run with every shape's pool at full depth —
	// a daemon that has been up for a while; false models a cold boot.
	WarmStart bool `json:"warm_start"`
}

func (f Fleet) withDefaults() Fleet {
	if f.Backends <= 0 {
		f.Backends = 1
	}
	if f.CPUs <= 0 {
		f.CPUs = 1
	}
	if f.RefillWorkers <= 0 {
		f.RefillWorkers = 1
	}
	return f
}

// Result is the simulator's prediction, shaped like the live
// generator's report plus simulation-only visibility.
type Result struct {
	load.Report
	// Fleet echoes the simulated configuration.
	Fleet Fleet `json:"fleet"`
	// CalibrationSource names where service times came from.
	CalibrationSource string `json:"calibration_source"`
	// StageMeans are the calibration's stage means (seconds).
	StageMeans map[string]float64 `json:"stage_means"`
	// MeanAdmissionWaitMs is the average time admitted sessions spent
	// queued behind MaxSessions.
	MeanAdmissionWaitMs float64 `json:"mean_admission_wait_ms"`
	// MeanCPUWaitMs is the average time jobs queued for a CPU slot.
	MeanCPUWaitMs float64 `json:"mean_cpu_wait_ms"`
	// CPUUtilization is busy CPU-seconds over available CPU-seconds
	// across the arrival window.
	CPUUtilization float64 `json:"cpu_utilization"`
}

// event is one scheduled state transition. seq breaks time ties
// deterministically: equal-time events fire in scheduling order.
type event struct {
	at   float64
	seq  int
	fire func(t float64)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// station is a capacity-limited FIFO resource (the CPU pool, the
// refill worker pool): jobs acquire a slot, hold it for a service
// time, release it to the next waiter.
type station struct {
	cap     int
	busy    int
	queue   []stationJob
	sim     *sim
	waitSum float64
	waited  int
	busySum float64 // busy-time integral for utilization
}

type stationJob struct {
	since float64
	start func(at float64)
}

// run enqueues a job: service is sampled when the job actually starts
// (start order is deterministic, so so is the sampling order); done
// fires at completion.
func (st *station) run(t float64, service func() float64, done func(t float64)) {
	start := func(at float64) {
		st.busy++
		d := service()
		st.busySum += d
		st.sim.schedule(at+d, func(end float64) {
			st.busy--
			st.next(end)
			done(end)
		})
	}
	if st.busy < st.cap {
		start(t)
		return
	}
	st.queue = append(st.queue, stationJob{since: t, start: start})
}

// next releases a freed slot to the head waiter.
func (st *station) next(t float64) {
	if len(st.queue) == 0 || st.busy >= st.cap {
		return
	}
	j := st.queue[0]
	st.queue = st.queue[1:]
	st.waitSum += t - j.since
	st.waited++
	j.start(t)
}

// admWaiter is a session queued behind a backend's MaxSessions limit.
type admWaiter struct {
	since float64
	shed  bool // set when the admission-wait deadline fired first
	admit func(t float64)
}

// backend is one simulated maxd.
type backend struct {
	sim     *sim
	fl      Fleet
	cpu     *station
	refill  *station
	pools   map[string]int // shape key → warm entries
	backlog map[string]int // shape key → refill jobs outstanding
	active  int            // admitted sessions in flight
	admQ    []*admWaiter
	admWait float64
	admN    int
}

func newBackend(s *sim, fl Fleet) *backend {
	return &backend{
		sim:     s,
		fl:      fl,
		cpu:     &station{cap: fl.CPUs, sim: s},
		refill:  &station{cap: fl.RefillWorkers, sim: s},
		pools:   map[string]int{},
		backlog: map[string]int{},
	}
}

// admit runs maxd's admission semantics: a free slot admits
// immediately; otherwise the session queues up to AdmissionWaitSec and
// is then shed.
func (b *backend) admit(t float64, admitted func(t float64), shedFn func(t float64)) {
	if b.fl.MaxSessions <= 0 || b.active < b.fl.MaxSessions {
		b.active++
		admitted(t)
		return
	}
	if b.fl.AdmissionWaitSec <= 0 {
		// Immediate shed when the queue is not allowed to wait.
		shedFn(t)
		return
	}
	w := &admWaiter{since: t, admit: admitted}
	b.admQ = append(b.admQ, w)
	b.sim.schedule(t+b.fl.AdmissionWaitSec, func(at float64) {
		if w.shed || w.admit == nil {
			return
		}
		w.shed = true
		b.dropWaiter(w)
		shedFn(at)
	})
}

func (b *backend) dropWaiter(w *admWaiter) {
	for i, q := range b.admQ {
		if q == w {
			b.admQ = append(b.admQ[:i], b.admQ[i+1:]...)
			return
		}
	}
}

// release frees a session slot to the longest-queued live waiter.
func (b *backend) release(t float64) {
	b.active--
	for len(b.admQ) > 0 {
		w := b.admQ[0]
		b.admQ = b.admQ[1:]
		if w.shed {
			continue
		}
		b.admWait += t - w.since
		b.admN++
		admit := w.admit
		w.admit = nil
		b.active++
		admit(t)
		return
	}
}

// takePool consumes one warm entry for the shape, kicking a refill
// job, and reports whether the request hit.
func (b *backend) takePool(t float64, key string, cal *Calibration, rng *rand.Rand) bool {
	if b.fl.PoolDepth <= 0 {
		return false
	}
	if b.pools[key] <= 0 {
		b.ensureRefill(t, key, cal, rng)
		return false
	}
	b.pools[key]--
	b.ensureRefill(t, key, cal, rng)
	return true
}

// ensureRefill keeps refill jobs outstanding for every missing entry,
// mirroring the engine's backlog-driven workers.
func (b *backend) ensureRefill(t float64, key string, cal *Calibration, rng *rand.Rand) {
	deficit := b.fl.PoolDepth - b.pools[key] - b.backlog[key]
	for i := 0; i < deficit; i++ {
		b.backlog[key]++
		b.refill.run(t,
			func() float64 { return cal.Refill.Sample(rng) },
			func(end float64) {
				b.backlog[key]--
				if b.pools[key] < b.fl.PoolDepth {
					b.pools[key]++
				}
			})
	}
}

// sim is one simulation run's mutable state.
type sim struct {
	events eventHeap
	seq    int
	now    float64
}

func (s *sim) schedule(at float64, fire func(t float64)) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fire: fire})
}

func (s *sim) drain() {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fire(e.at)
	}
}

// Simulate replays the scenario's exact arrival schedule (the same
// load.ArrivalTimes the live generator paces by) through the fleet
// model and predicts the run's report. Deterministic: the same
// scenario, fleet and calibration produce a byte-identical Result.
func Simulate(sc load.Scenario, fl Fleet, cal *Calibration) (*Result, error) {
	arrivals, err := load.ArrivalTimes(sc)
	if err != nil {
		return nil, err
	}
	fl = fl.withDefaults()
	// A dedicated stream, decoupled from the schedule's: service
	// sampling must not perturb arrivals.
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x7ac0_ffee_c0de_55aa))
	s := &sim{}
	backends := make([]*backend, fl.Backends)
	for i := range backends {
		backends[i] = newBackend(s, fl)
		if fl.WarmStart && fl.PoolDepth > 0 {
			for _, sw := range sc.Shapes {
				backends[i].pools[sw.Key()] = fl.PoolDepth
			}
		}
	}

	res := &Result{Fleet: fl, CalibrationSource: cal.Source, StageMeans: cal.Describe()}
	res.Scenario = sc
	res.Offered = len(arrivals)
	inflight := 0
	var latencies []float64
	var poolHits, poolMisses uint64

	for i, a := range arrivals {
		i, a := i, a
		s.schedule(a.At, func(t float64) {
			if sc.MaxInflight > 0 && inflight >= sc.MaxInflight {
				res.Skipped++
				return
			}
			inflight++
			res.Started++
			b := backends[i%len(backends)]
			finish := func(end float64, ok bool) {
				inflight--
				if ok {
					res.Succeeded++
					latencies = append(latencies, end-a.At+cal.Overhead)
				}
			}
			b.admit(t,
				func(at float64) {
					// Admitted: OT setup on a CPU slot, then the request.
					b.cpu.run(at,
						func() float64 { return cal.OTSetup.Sample(rng) },
						func(otEnd float64) {
							hit := b.takePool(otEnd, a.Shape.Key(), cal, rng)
							if hit {
								poolHits++
							} else {
								poolMisses++
							}
							b.cpu.run(otEnd,
								func() float64 {
									if hit {
										return cal.RequestWarm.Sample(rng)
									}
									return cal.RequestCold.Sample(rng)
								},
								func(end float64) {
									b.release(end)
									finish(end, true)
								})
						})
				},
				func(at float64) {
					res.Shed++
					finish(at, false)
				})
		})
	}
	s.drain()

	res.Finalize(latencies)
	if fl.PoolDepth > 0 {
		res.Pool = load.NewPoolStats(poolHits, poolMisses)
	}
	var admWait, cpuWait float64
	var admN, cpuN int
	var busySum float64
	for _, b := range backends {
		admWait += b.admWait
		admN += b.admN
		cpuWait += b.cpu.waitSum
		cpuN += b.cpu.waited
		busySum += b.cpu.busySum
	}
	if admN > 0 {
		res.MeanAdmissionWaitMs = admWait / float64(admN) * 1000
	}
	if cpuN > 0 {
		res.MeanCPUWaitMs = cpuWait / float64(cpuN) * 1000
	}
	if window := sc.DurationSec * float64(fl.Backends*fl.CPUs); window > 0 {
		res.CPUUtilization = busySum / window
	}
	return res, nil
}
