package obs

import (
	"runtime"
	"sync"
	"time"
)

// GCPauseBuckets bound the runtime_gc_pause_seconds histogram: GC
// stop-the-world pauses sit in the microsecond-to-millisecond range,
// well below DurationBuckets' protocol-latency territory.
var GCPauseBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.1,
}

// SchedLatencyBuckets bound the goroutine wake-up latency proxy, which
// on a healthy host sits at a few microseconds and climbs when the
// scheduler's run queues back up.
var SchedLatencyBuckets = []float64{
	1e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 0.1,
}

// RuntimeCollector samples the Go runtime into a Registry: goroutine
// count, heap occupancy, GC cycle and pause accounting, and a
// scheduler-latency proxy. It exists so a perf regression flagged by
// the benchgrid gate is explainable from the daemon's own /metrics —
// "p99 moved because GC pauses doubled" is a diff, not a guess.
//
// Collect is cheap (one runtime.ReadMemStats plus one goroutine
// wake-up) and is normally driven per-scrape via Obs.OnScrape, so the
// exposition is exactly as fresh as the scrape that reads it. A nil
// *RuntimeCollector is a no-op.
type RuntimeCollector struct {
	goroutines *Gauge
	heapInuse  *Gauge
	heapIdle   *Gauge
	heapSys    *Gauge
	nextGC     *Gauge
	gcCycles   *Counter
	gcPause    *Histogram
	sched      *Histogram

	mu        sync.Mutex
	lastNumGC uint32
}

// NewRuntimeCollector registers the runtime metric families in reg
// (nil reg yields a functional no-op collector) and primes the GC
// cursor so only pauses after construction are observed.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	rc := &RuntimeCollector{
		goroutines: reg.Gauge("runtime_goroutines", "live goroutines"),
		heapInuse:  reg.Gauge("runtime_heap_inuse_bytes", "heap bytes in spans currently in use"),
		heapIdle:   reg.Gauge("runtime_heap_idle_bytes", "heap bytes in idle (unused) spans"),
		heapSys:    reg.Gauge("runtime_heap_sys_bytes", "heap bytes obtained from the OS"),
		nextGC:     reg.Gauge("runtime_next_gc_bytes", "heap size target of the next GC cycle"),
		gcCycles:   reg.Counter("runtime_gc_cycles_total", "completed GC cycles"),
		gcPause:    reg.Histogram("runtime_gc_pause_seconds", "GC stop-the-world pause durations", GCPauseBuckets),
		sched:      reg.Histogram("runtime_sched_latency_seconds", "goroutine wake-up latency proxy (spawn-to-run)", SchedLatencyBuckets),
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rc.lastNumGC = ms.NumGC
	return rc
}

// Collect takes one sample of every runtime metric. Safe for
// concurrent use; pause observation is deduplicated under the
// collector's cursor so two racing collects never double-count a GC.
func (rc *RuntimeCollector) Collect() {
	if rc == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rc.goroutines.Set(int64(runtime.NumGoroutine()))
	rc.heapInuse.Set(int64(ms.HeapInuse))
	rc.heapIdle.Set(int64(ms.HeapIdle))
	rc.heapSys.Set(int64(ms.HeapSys))
	rc.nextGC.Set(int64(ms.NextGC))

	rc.mu.Lock()
	last := rc.lastNumGC
	if ms.NumGC > last {
		rc.lastNumGC = ms.NumGC
	}
	rc.mu.Unlock()
	if ms.NumGC > last {
		missed := ms.NumGC - last
		rc.gcCycles.Add(uint64(missed))
		// PauseNs is a circular buffer of the last 256 pause times,
		// indexed by cycle number; replay only the cycles this
		// collector has not yet observed.
		if missed > uint32(len(ms.PauseNs)) {
			missed = uint32(len(ms.PauseNs))
		}
		for i := ms.NumGC - missed + 1; i <= ms.NumGC; i++ {
			pause := ms.PauseNs[(i+uint32(len(ms.PauseNs))-1)%uint32(len(ms.PauseNs))]
			rc.gcPause.Observe(float64(pause) / float64(time.Second))
		}
	}

	// Scheduler-latency proxy: how long a freshly runnable goroutine
	// waits before it actually runs. One spawn per collect keeps the
	// probe itself off the profile.
	start := time.Now()
	woke := make(chan time.Duration, 1)
	go func() { woke <- time.Since(start) }()
	rc.sched.Observe((<-woke).Seconds())
}
