package protocol

// Recovery-surface tests: the BUSY load-shedding frame and the named
// session-closed error — the wire- and API-level contracts the retry
// layer classifies against.

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"maxelerator/internal/maxsim"
	"maxelerator/internal/wire"
)

// TestDialBusyFrame: a server that answers the connection with a BUSY
// frame yields a typed BusyError carrying the retry-after hint, and
// the error classifies as ErrServerBusy.
func TestDialBusyFrame(t *testing.T) {
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	const hint = 1500 * time.Millisecond
	go func() {
		_ = SendBusy(a, hint)
		a.Close()
	}()

	_, derr := cli.Dial(b)
	if derr == nil {
		t.Fatal("Dial succeeded against a BUSY rejection")
	}
	if !errors.Is(derr, ErrServerBusy) {
		t.Fatalf("Dial error = %v, want ErrServerBusy", derr)
	}
	var be *BusyError
	if !errors.As(derr, &be) {
		t.Fatalf("Dial error = %T, want *BusyError", derr)
	}
	if be.RetryAfter != hint {
		t.Errorf("RetryAfter = %v, want %v", be.RetryAfter, hint)
	}
}

// TestDialBusyProbeDoesNotMisfire: a genuine hello must never be
// mistaken for a busy frame — Busy is the discriminator gob leaves
// false when the frame is a hello.
func TestDialBusyProbeDoesNotMisfire(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	srvDone := make(chan error, 1)
	go func() {
		sess, err := srv.NewSession(a, SessionConfig{})
		if err != nil {
			srvDone <- err
			return
		}
		defer sess.Close()
		_, err = sess.Serve(Request{Matrix: [][]int64{{1, 2}}})
		if errors.Is(err, ErrSessionEnded) {
			err = nil
		}
		srvDone <- err
	}()
	cs, err := cli.Dial(b)
	if err != nil {
		t.Fatalf("Dial through the busy probe failed: %v", err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if serr := <-srvDone; serr != nil {
		t.Fatal(serr)
	}
}

// TestDoAfterCloseReturnsErrSessionClosed: the closed-session error is
// a named sentinel, and Close is idempotent.
func TestDoAfterCloseReturnsErrSessionClosed(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	srvDone := make(chan error, 1)
	go func() {
		sess, err := srv.NewSession(a, SessionConfig{})
		if err != nil {
			srvDone <- err
			return
		}
		defer sess.Close()
		_, serr := sess.Serve(Request{Matrix: [][]int64{{1, 2}}})
		srvDone <- serr
	}()
	cs, err := cli.Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatalf("second Close = %v, want idempotent nil", err)
	}
	if _, err := cs.Do([]int64{1, 2}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Do after Close = %v, want ErrSessionClosed", err)
	}
	if serr := <-srvDone; !errors.Is(serr, ErrSessionEnded) {
		t.Fatalf("server saw %v, want ErrSessionEnded", serr)
	}
}

// TestDoOnBrokenSessionNamesErrSessionClosed: after a mid-request
// failure the session refuses further requests with the same named
// sentinel (wrapping the original cause), and Err exposes the cause.
func TestDoOnBrokenSessionNamesErrSessionClosed(t *testing.T) {
	srv, err := NewServer(maxsim.Config{Width: 8, AccWidth: 24, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := wire.Pipe()
	defer a.Close()
	defer b.Close()
	srvDone := make(chan error, 1)
	go func() {
		_, serr := srv.Serve(a, Request{Matrix: [][]int64{{1, 2, 3}}})
		srvDone <- serr
	}()
	cs, err := cli.Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	// A mismatched vector breaks the session (the client aborts by
	// closing — see ClientSession.fail).
	if _, err := cs.Do([]int64{1}); err == nil {
		t.Fatal("mismatched vector accepted")
	}
	if cs.Err() == nil {
		t.Fatal("Err() = nil on a broken session")
	}
	if _, err := cs.Do([]int64{1, 2, 3}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Do on broken session = %v, want ErrSessionClosed", err)
	}
	<-srvDone
}
