package protocol

// Panic containment. The garbler is a long-running daemon serving many
// tenants: a panic while garbling one poisoned request must fail that
// request, never the process. recover() sits at the two places a
// request's code runs — the session goroutine (serveOpened) and each
// garble-pool worker — and converts the panic into an error wrapping
// ErrInternal. The session is broken (the stream position is unknown)
// but the daemon, its listener, and every other session stay up, and
// the peer receives an explicit error frame instead of waiting out its
// deadline. Replaying the failed request on a fresh session is safe:
// every garbling uses fresh labels and a fresh free-XOR offset, so the
// aborted attempt leaked nothing.

import (
	"fmt"
	"log"
	"runtime/debug"
	"sync"

	"maxelerator/internal/obs"
)

// panicStackOnce gates the full stack dump: the first recovered panic
// logs its stack for diagnosis, later ones log a single line (the
// panic value repeats; the stack is almost always the same).
var panicStackOnce sync.Once

// recoveredPanic converts a recovered panic value into a per-request
// error, counting it and logging the stack once per process.
func recoveredPanic(reg *obs.Registry, r any) error {
	return recoveredPanicStack(reg, r, debug.Stack())
}

// recoveredPanicStack is recoveredPanic for panics recovered on another
// goroutine (the serve pipeline's producer), logging the stack captured
// at the recovery site instead of the caller's.
func recoveredPanicStack(reg *obs.Registry, r any, stack []byte) error {
	reg.Counter("panics_recovered_total",
		"panics recovered and converted to per-request errors").Inc()
	logged := false
	panicStackOnce.Do(func() {
		logged = true
		log.Printf("protocol: recovered panic: %v\n%s", r, stack)
	})
	if !logged {
		log.Printf("protocol: recovered panic: %v", r)
	}
	return fmt.Errorf("%w: recovered panic: %v", ErrInternal, r)
}
