package overlay

import (
	"testing"
	"time"

	"maxelerator/internal/paper"
)

func TestCalibratedWidthsMatchTable2(t *testing.T) {
	m := NewModel()
	for _, b := range paper.Widths {
		c, err := m.CyclesPerMAC(b)
		if err != nil {
			t.Fatal(err)
		}
		if c != paper.Overlay.CyclesPerMAC[b] {
			t.Fatalf("b=%d: %v cycles, want %v", b, c, paper.Overlay.CyclesPerMAC[b])
		}
	}
}

func TestTimePerMACMatchesTable2(t *testing.T) {
	m := NewModel()
	want := map[int]time.Duration{8: 22 * time.Microsecond, 16: 60 * time.Microsecond, 32: 180 * time.Microsecond}
	for b, w := range want {
		got, err := m.TimePerMAC(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("b=%d: %v, want %v", b, got, w)
		}
	}
}

func TestThroughputMatchesTable2(t *testing.T) {
	m := NewModel()
	for _, b := range paper.Widths {
		got, err := m.ThroughputMACsPerSec(b)
		if err != nil {
			t.Fatal(err)
		}
		want := paper.Overlay.ThroughputMACs[b]
		if got < want*0.98 || got > want*1.02 {
			t.Fatalf("b=%d: %.4g MAC/s, want ≈%.4g", b, got, want)
		}
		pc, err := m.PerCoreMACsPerSec(b)
		if err != nil {
			t.Fatal(err)
		}
		wantPC := paper.Overlay.PerCoreMACs[b]
		if pc < wantPC*0.97 || pc > wantPC*1.03 {
			t.Fatalf("b=%d: %.4g MAC/s/core, want ≈%.4g", b, pc, wantPC)
		}
	}
}

func TestUncalibratedWidthsScale(t *testing.T) {
	m := NewModel()
	c12, err := m.CyclesPerMAC(12)
	if err != nil {
		t.Fatal(err)
	}
	c8 := paper.Overlay.CyclesPerMAC[8]
	c16 := paper.Overlay.CyclesPerMAC[16]
	if c12 <= c8 || c12 >= c16 {
		t.Fatalf("b=12 cost %v outside (%v, %v)", c12, c8, c16)
	}
}

func TestValidation(t *testing.T) {
	m := NewModel()
	if _, err := m.CyclesPerMAC(1); err == nil {
		t.Fatal("width 1 accepted")
	}
	if _, err := m.TimePerMAC(0); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := m.ThroughputMACsPerSec(-8); err == nil {
		t.Fatal("negative width accepted")
	}
	if _, err := m.PerCoreMACsPerSec(-8); err == nil {
		t.Fatal("negative width accepted")
	}
}

func TestOverheadRange(t *testing.T) {
	lo, hi := LUTOverheadRange()
	if lo != 40 || hi != 100 {
		t.Fatalf("overhead range %d–%d, want 40–100", lo, hi)
	}
}
