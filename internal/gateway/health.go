package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"maxelerator/internal/obs"
	"maxelerator/internal/resilience"
)

// Backend names one garbler daemon the gateway can route to.
type Backend struct {
	// Addr is the protocol listen address sessions are proxied to.
	Addr string
	// HealthURL is the base of the daemon's debug surface (its
	// -metrics-addr), e.g. "http://10.0.0.7:9090": the prober GETs
	// <HealthURL>/healthz for liveness and <HealthURL>/shapez for the
	// advertised precompute shapes. Empty disables probing — the
	// backend is assumed healthy forever.
	HealthURL string
}

// backendState is the gateway's live view of one backend: health
// (breaker-driven, fed by probes and handshake results), advertised
// shapes, and in-flight session count (bounded-load input).
type backendState struct {
	Backend

	// breaker owns routability; its transition hook keeps healthy and
	// ring membership in sync. Never call a breaker method while
	// holding mu — the hook takes mu under the breaker's own lock.
	breaker *resilience.Breaker

	mu      sync.Mutex
	healthy bool   // mirror of breaker.Routable(), maintained by the hook
	status  string // last probe verdict: ok | degraded | overloaded | unreachable
	shapes  map[string]struct{}

	active   atomic.Int64 // sessions currently relayed to this backend
	sessions atomic.Int64 // sessions ever committed to this backend
}

// setShapes replaces the advertised-shape set.
func (b *backendState) setShapes(shapes []string) {
	set := make(map[string]struct{}, len(shapes))
	for _, s := range shapes {
		set[s] = struct{}{}
	}
	b.mu.Lock()
	b.shapes = set
	b.mu.Unlock()
}

// advertises reports whether the backend's daemon announced a warm
// pool for the shape key.
func (b *backendState) advertises(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.shapes[key]
	return ok
}

// snapshotHealth reads the probe-owned fields consistently.
func (b *backendState) snapshotHealth() (healthy bool, status string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy, b.status
}

// ProbeFunc asks one backend for its health verdict and advertised
// shapes. Implementations return the health string (obs.HealthOK,
// obs.HealthDegraded or obs.HealthOverloaded) or an error when the
// backend is unreachable. Tests inject deterministic probes; the
// default is httpProbe.
type ProbeFunc func(b Backend) (status string, shapes []string, err error)

// httpProbe is the production probe: GET <HealthURL>/healthz (the body
// is the verdict; a 503 carries "overloaded") and GET
// <HealthURL>/shapez for the advertised shape list. A missing /shapez
// (older daemons without -advertise) is not an error — the backend
// just advertises nothing.
func httpProbe(client *http.Client) ProbeFunc {
	return func(b Backend) (string, []string, error) {
		resp, err := client.Get(b.HealthURL + "/healthz")
		if err != nil {
			return "", nil, err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		if err != nil {
			return "", nil, err
		}
		status := strings.TrimSpace(string(body))
		switch status {
		case obs.HealthOK, obs.HealthDegraded, obs.HealthOverloaded:
		default:
			return "", nil, fmt.Errorf("gateway: unrecognized health verdict %q", status)
		}
		return status, fetchShapes(client, b.HealthURL), nil
	}
}

// fetchShapes GETs the advertised shape list, tolerating every
// failure: shape advertisement is an optimization hint, never a
// health signal.
func fetchShapes(client *http.Client, base string) []string {
	resp, err := client.Get(base + "/shapez")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var payload struct {
		Shapes []string `json:"shapes"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&payload); err != nil {
		return nil
	}
	return payload.Shapes
}

// probeLoop polls every backend at the configured interval until the
// gateway closes. The first pass runs immediately so a fresh gateway
// converges on real health within one interval, not two.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	g.ProbeNow()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.ProbeNow()
		}
	}
}

// ProbeNow runs one synchronous probe pass over every backend and
// feeds the verdicts into the circuit breakers:
//
//   - ok and degraded verdicts count as successes (a degraded daemon
//     is queueing, not rejecting — still better than shedding the
//     session here);
//   - overloaded verdicts and unreachable backends count as failures;
//     EjectAfter consecutive failures trip the breaker open and the
//     backend leaves the ring. Readmission is the breaker's half-open
//     trial: after the cooldown (doubling on every re-trip) the next
//     successful probe readmits — never sooner, however healthy the
//     probes look mid-cooldown. Ring membership itself moves inside
//     the breaker's transition hook.
//
// The pass also sweeps the latency ejector, so outlier demotions are
// re-evaluated on probe cadence.
//
// Exported so tests (and operators via a future admin surface) can
// force convergence without waiting out the interval.
func (g *Gateway) ProbeNow() {
	for _, b := range g.states {
		if b.HealthURL == "" || g.cfg.Probe == nil {
			continue
		}
		status, shapes, err := g.cfg.Probe(b.Backend)
		failed := err != nil || status == obs.HealthOverloaded
		b.mu.Lock()
		if err != nil {
			b.status = "unreachable"
		} else {
			b.status = status
		}
		if !failed {
			b.shapes = toSet(shapes)
		}
		b.mu.Unlock()
		b.breaker.Observe(!failed)
	}
	for _, addr := range g.ejector.Sweep() {
		g.reg.Counter(obs.MetricEjections, obs.HelpEjections,
			obs.L("backend", addr), obs.L("reason", "latency")).Inc()
		g.logf("gateway: latency outlier %s demoted to last-resort (EWMA beyond k×median)", addr)
	}
	g.publishRingState()
}

func toSet(ss []string) map[string]struct{} {
	set := make(map[string]struct{}, len(ss))
	for _, s := range ss {
		set[s] = struct{}{}
	}
	return set
}

// publishRingState refreshes the membership gauges after a probe pass
// or a routing-time transition.
func (g *Gateway) publishRingState() {
	healthy := 0
	for _, b := range g.states {
		up, _ := b.snapshotHealth()
		var v int64
		if up {
			v = 1
			healthy++
		}
		g.reg.Gauge("gw_backend_up", "backend ring membership (1 = routable)",
			obs.L("backend", b.Addr)).Set(v)
	}
	g.reg.Gauge("gw_backends_healthy", "backends currently on the ring").Set(int64(healthy))
	g.reg.Gauge("gw_backends_total", "backends configured").Set(int64(len(g.states)))
}

// healthVerdict is the gateway's own /healthz: routable fleet → ok,
// partial fleet → degraded, empty ring → overloaded (the gateway is
// about to shed every session, which is what overloaded means).
func (g *Gateway) healthVerdict() string {
	healthy := 0
	for _, b := range g.states {
		if up, _ := b.snapshotHealth(); up {
			healthy++
		}
	}
	switch {
	case healthy == 0:
		return obs.HealthOverloaded
	case healthy < len(g.states):
		return obs.HealthDegraded
	default:
		return obs.HealthOK
	}
}
