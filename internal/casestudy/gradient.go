package casestudy

import (
	"fmt"
	"time"
)

// GradientDescentModel prices the kernel-ML iteration of §2.1 / Eq. 2,
//
//	xᵗ⁺¹ = xᵗ − µ(AᵀA·xᵗ − Aᵀy),
//
// the workload class ("kernel-based machine learning") the paper's
// introduction motivates. With A an n×d data matrix and AᵀA, Aᵀy
// precomputed by the data holder, each iteration is one d×d
// matrix-vector product plus O(d) cheap updates: d² MACs per
// iteration under the protocol.
type GradientDescentModel struct {
	// N and D are the data shape; Iterations the solver budget.
	N, D, Iterations int
	// MACsPerIteration is d².
	MACsPerIteration uint64
	// TotalMACs is MACsPerIteration × Iterations.
	TotalMACs uint64
	// SoftwareTime and AcceleratedTime price the MAC stream on the
	// software framework and on MAXelerator.
	SoftwareTime, AcceleratedTime time.Duration
	// Speedup is the ratio.
	Speedup float64
}

// GradientDescent builds the Eq. 2 cost model.
func GradientDescent(n, d, iterations int, sw MACSpeedup) (GradientDescentModel, error) {
	if n <= 0 || d <= 0 || iterations <= 0 {
		return GradientDescentModel{}, fmt.Errorf("casestudy: invalid shape n=%d d=%d iters=%d", n, d, iterations)
	}
	if sw.SoftwarePerMAC <= 0 || sw.AcceleratedPerMAC <= 0 {
		return GradientDescentModel{}, fmt.Errorf("casestudy: per-MAC latencies must be positive")
	}
	m := GradientDescentModel{
		N: n, D: d, Iterations: iterations,
		MACsPerIteration: uint64(d) * uint64(d),
	}
	m.TotalMACs = m.MACsPerIteration * uint64(iterations)
	m.SoftwareTime = time.Duration(m.TotalMACs) * sw.SoftwarePerMAC
	m.AcceleratedTime = time.Duration(m.TotalMACs) * sw.AcceleratedPerMAC
	if m.AcceleratedTime > 0 {
		m.Speedup = float64(m.SoftwareTime) / float64(m.AcceleratedTime)
	}
	return m, nil
}
