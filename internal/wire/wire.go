// Package wire provides the message-framing transport shared by the
// oblivious-transfer and two-party protocol layers: length-prefixed
// messages over any io.ReadWriter (the TCP path between cloud server
// and client) and an in-memory pipe (the in-process path used by tests
// and single-binary examples).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"time"
)

// MaxMessageSize bounds a single framed message (64 MiB). It protects
// against corrupt or hostile length prefixes.
const MaxMessageSize = 64 << 20

// frameHeaderSize is the length prefix each framed message carries.
const frameHeaderSize = 4

// Conn is a reliable, ordered message channel between two parties.
type Conn interface {
	// SendMsg transmits one message.
	SendMsg(msg []byte) error
	// RecvMsg receives the next message.
	RecvMsg() ([]byte, error)
	// Close releases the channel. Further operations fail.
	Close() error
}

// DeadlineConn is a Conn whose blocking operations can be bounded by
// an absolute deadline, in the net.Conn style: the deadline applies to
// every current and future SendMsg/RecvMsg until replaced, the zero
// time clears it, and an expired deadline fails operations — including
// ones already blocked — with an error matching os.ErrDeadlineExceeded
// (see IsTimeout). Both Pipe ends and stream connections over a
// deadline-capable transport (any net.Conn) implement it.
type DeadlineConn interface {
	Conn
	SetDeadline(t time.Time) error
}

// ErrDeadlineUnsupported is returned by SetDeadline when the
// underlying transport cannot enforce deadlines (a plain io.ReadWriter
// with no SetDeadline of its own).
var ErrDeadlineUnsupported = errors.New("wire: transport does not support deadlines")

// connUnwrapper is implemented by Conn wrappers (Counting, Observed,
// fault injectors, ...) that delegate to an inner Conn, so helpers like
// AsDeadline and PeerAddr can reach the transport underneath.
type connUnwrapper interface{ Unwrap() Conn }

// AsDeadline finds the deadline-capable connection underneath c,
// unwrapping any chain of wrappers that expose Unwrap. Setting a
// deadline on the returned DeadlineConn bounds operations made through
// the wrappers too, since they all delegate to the same transport.
func AsDeadline(c Conn) (DeadlineConn, bool) {
	for c != nil {
		if dc, ok := c.(DeadlineConn); ok {
			return dc, true
		}
		u, ok := c.(connUnwrapper)
		if !ok {
			return nil, false
		}
		c = u.Unwrap()
	}
	return nil, false
}

// streamConn frames messages over a byte stream with a 4-byte
// big-endian length prefix.
type streamConn struct {
	rw  io.ReadWriter
	wmu sync.Mutex // serialises writers: header and body must stay adjacent
	rmu sync.Mutex // serialises readers: header and body must be read by one caller
}

// NewStreamConn wraps a byte stream (e.g. a *net.TCPConn) as a Conn.
// Closing the Conn closes the underlying stream when it implements
// io.Closer.
func NewStreamConn(rw io.ReadWriter) Conn { return &streamConn{rw: rw} }

func (c *streamConn) SendMsg(msg []byte) error {
	if len(msg) > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds limit %d", len(msg), MaxMessageSize)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := c.rw.Write(msg); err != nil {
		return fmt.Errorf("wire: writing frame body: %w", err)
	}
	return nil
}

func (c *streamConn) RecvMsg() ([]byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxMessageSize)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(c.rw, msg); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return msg, nil
}

func (c *streamConn) Close() error {
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// streamDeadliner is satisfied by net.Conn transports.
type streamDeadliner interface{ SetDeadline(t time.Time) error }

// SetDeadline bounds current and future stream operations when the
// underlying transport supports deadlines (any net.Conn does), and
// returns ErrDeadlineUnsupported otherwise — the caller decides whether
// a timeout-less transport is acceptable.
func (c *streamConn) SetDeadline(t time.Time) error {
	if d, ok := c.rw.(streamDeadliner); ok {
		return d.SetDeadline(t)
	}
	return ErrDeadlineUnsupported
}

// ErrClosed is returned by pipe operations after Close.
var ErrClosed = errors.New("wire: connection closed")

// pipeCloser is the close signal shared by both ends of a pipe:
// closing either end tears down the whole channel.
type pipeCloser struct {
	done chan struct{}
	once sync.Once
}

func (c *pipeCloser) close() { c.once.Do(func() { close(c.done) }) }

// pipeDeadline is one end's deadline state, in the style of net.Pipe:
// a channel that closes when the deadline passes, recreated when a new
// deadline is set after an expiry.
type pipeDeadline struct {
	mu     sync.Mutex
	timer  *time.Timer
	cancel chan struct{} // closed when the deadline passes
}

func makePipeDeadline() *pipeDeadline {
	return &pipeDeadline{cancel: make(chan struct{})}
}

// set replaces the deadline: zero clears it, a past time expires it
// immediately (waking blocked operations), a future time arms a timer.
func (d *pipeDeadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.timer != nil && !d.timer.Stop() {
		<-d.cancel // the timer fired between Stop and here; wait it out
	}
	d.timer = nil
	closed := isClosedChan(d.cancel)
	if t.IsZero() {
		if closed {
			d.cancel = make(chan struct{})
		}
		return
	}
	if dur := time.Until(t); dur > 0 {
		if closed {
			d.cancel = make(chan struct{})
		}
		ch := d.cancel
		d.timer = time.AfterFunc(dur, func() { close(ch) })
		return
	}
	if !closed {
		close(d.cancel)
	}
}

// wait returns the channel that closes when the deadline passes.
func (d *pipeDeadline) wait() chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cancel
}

func isClosedChan(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// errPipeTimeout is what an expired pipe deadline yields; it wraps
// os.ErrDeadlineExceeded so callers classify it exactly like a socket
// timeout (see IsTimeout).
var errPipeTimeout = fmt.Errorf("wire: pipe deadline exceeded: %w", os.ErrDeadlineExceeded)

// pipeConn is one end of an in-memory duplex message channel.
type pipeConn struct {
	send     chan<- []byte
	recv     <-chan []byte
	closer   *pipeCloser
	deadline *pipeDeadline // this end's deadline, shared by send and recv
}

// Pipe returns two connected in-memory Conns. Messages sent on one end
// are received on the other, in order. The buffer depth keeps
// ping-pong protocols from deadlocking when both parties run in the
// same goroutine for short exchanges. Each end supports SetDeadline
// with net.Conn semantics, so timeout paths are testable without
// sockets.
func Pipe() (Conn, Conn) {
	ab := make(chan []byte, 1024)
	ba := make(chan []byte, 1024)
	closer := &pipeCloser{done: make(chan struct{})}
	a := &pipeConn{send: ab, recv: ba, closer: closer, deadline: makePipeDeadline()}
	b := &pipeConn{send: ba, recv: ab, closer: closer, deadline: makePipeDeadline()}
	return a, b
}

func (p *pipeConn) SendMsg(msg []byte) error {
	return p.sendOwned(append([]byte(nil), msg...))
}

// sendOwned transmits cp, which the caller must not retain: the
// receiver takes ownership. SendMsg and SendVec both funnel here after
// making their single defensive copy.
func (p *pipeConn) sendOwned(cp []byte) error {
	select {
	case <-p.closer.done:
		return ErrClosed
	default:
	}
	if isClosedChan(p.deadline.wait()) {
		return errPipeTimeout
	}
	select {
	case p.send <- cp:
		return nil
	case <-p.closer.done:
		return ErrClosed
	case <-p.deadline.wait():
		return errPipeTimeout
	}
}

func (p *pipeConn) RecvMsg() ([]byte, error) {
	if isClosedChan(p.deadline.wait()) {
		return nil, errPipeTimeout
	}
	select {
	case msg, ok := <-p.recv:
		if !ok {
			return nil, ErrClosed
		}
		return msg, nil
	case <-p.closer.done:
		// Drain any message that raced with Close.
		select {
		case msg, ok := <-p.recv:
			if ok {
				return msg, nil
			}
		default:
		}
		return nil, ErrClosed
	case <-p.deadline.wait():
		return nil, errPipeTimeout
	}
}

// SetDeadline bounds this end's current and future operations; the
// zero time clears it. The peer end keeps its own deadline.
func (p *pipeConn) SetDeadline(t time.Time) error {
	p.deadline.set(t)
	return nil
}

func (p *pipeConn) Close() error {
	p.closer.close()
	return nil
}

// Counting wraps a Conn and tallies traffic, used by the benchmarks to
// report protocol communication volume.
type Counting struct {
	Conn
	mu             sync.Mutex
	sent, received int64
	sentMsgs       int64
	recvMsgs       int64
}

// NewCounting wraps conn with byte and message counters.
func NewCounting(conn Conn) *Counting { return &Counting{Conn: conn} }

// SendMsg implements Conn.
func (c *Counting) SendMsg(msg []byte) error {
	err := c.Conn.SendMsg(msg)
	if err == nil {
		c.mu.Lock()
		c.sent += int64(len(msg))
		c.sentMsgs++
		c.mu.Unlock()
	}
	return err
}

// RecvMsg implements Conn.
func (c *Counting) RecvMsg() ([]byte, error) {
	msg, err := c.Conn.RecvMsg()
	if err == nil {
		c.mu.Lock()
		c.received += int64(len(msg))
		c.recvMsgs++
		c.mu.Unlock()
	}
	return msg, err
}

// Totals returns bytes and messages sent and received so far.
func (c *Counting) Totals() (sentBytes, recvBytes, sentMsgs, recvMsgs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.received, c.sentMsgs, c.recvMsgs
}

// Unwrap returns the wrapped Conn.
func (c *Counting) Unwrap() Conn { return c.Conn }

// observedConn reports per-message wire volume to callbacks. Unlike
// Counting it charges the 4-byte frame header too, so the totals match
// what actually crosses the transport.
type observedConn struct {
	Conn
	onSend, onRecv func(bytes int)
}

// Observed wraps conn so every successful send/receive reports its
// framed byte count (payload + header) to the given callbacks — the
// hook the daemon uses to feed per-connection traffic into its metrics
// registry. Nil callbacks are allowed.
func Observed(conn Conn, onSend, onRecv func(bytes int)) Conn {
	return &observedConn{Conn: conn, onSend: onSend, onRecv: onRecv}
}

func (c *observedConn) SendMsg(msg []byte) error {
	err := c.Conn.SendMsg(msg)
	if err == nil && c.onSend != nil {
		c.onSend(len(msg) + frameHeaderSize)
	}
	return err
}

func (c *observedConn) RecvMsg() ([]byte, error) {
	msg, err := c.Conn.RecvMsg()
	if err == nil && c.onRecv != nil {
		c.onRecv(len(msg) + frameHeaderSize)
	}
	return msg, err
}

// Unwrap returns the wrapped Conn.
func (c *observedConn) Unwrap() Conn { return c.Conn }

// remoteAddrer is satisfied by net.Conn transports.
type remoteAddrer interface{ RemoteAddr() net.Addr }

// PeerAddr reports the remote address of the transport underlying c,
// unwrapping any chain of wrappers that expose Unwrap. It returns ""
// for in-memory pipes and other address-less transports.
func PeerAddr(c Conn) string {
	for c != nil {
		if sc, ok := c.(*streamConn); ok {
			if ra, ok := sc.rw.(remoteAddrer); ok {
				return ra.RemoteAddr().String()
			}
			return ""
		}
		u, ok := c.(connUnwrapper)
		if !ok {
			return ""
		}
		c = u.Unwrap()
	}
	return ""
}

// IsDisconnect reports whether err is one of the transport-level
// "peer went away (or is not there)" errors — a closed pipe or socket,
// an EOF on a frame boundary, a reset, or a refused dial — as opposed
// to a protocol-level failure. Callers use it to tell an orderly
// hangup apart from stream corruption; retry layers use it as the
// transient-fault signal (a refused connection usually means the
// server is restarting).
func IsDisconnect(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	return errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED)
}

// IsTimeout reports whether err is a deadline expiry — from a net.Conn
// deadline, a pipe deadline, or anything else wrapping
// os.ErrDeadlineExceeded or a net.Error with Timeout() — as opposed to
// a disconnect or a corruption error. IsTimeout and IsDisconnect are
// disjoint: a stalled-but-connected peer times out, a vanished peer
// disconnects, and callers react differently to each.
func IsTimeout(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
