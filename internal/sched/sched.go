// Package sched builds the FSM garbling schedule of the MAXelerator
// MAC unit (§4 of the paper): the static assignment of garbling
// operations to (stage, core, cycle) slots that replaces the run-time
// netlist of conventional GC frameworks.
//
// Architecture recap. The MAC of bit-width b is computed bit-serially:
// the model word x is held in the cores while the client word a
// streams in one bit per stage, where one *stage* is three clock
// cycles (one garbled table per core per cycle).
//
//   - Segment 1 (MUX_ADD, Fig. 3): b/2 cores. Core m holds x[2m] and
//     x[2m+1]; per stage it garbles two partial-product ANDs
//     (x[2m]∧a[n] and x[2m+1]∧a[n−1]) and one serial-adder AND (plus
//     four free XORs), emitting one bit of the running sum
//     s_m = (x[2m] + 2·x[2m+1])·a.
//   - Segment 2 (TREE, Fig. 2): ⌈(b/2+8)/3⌉ cores. Per stage it
//     garbles the b/2−1 serial tree-adder ANDs that combine the s_m
//     streams (shift-by-2m realised as delay registers), eight
//     multiplexer/2's-complement ANDs for signed-input support (§4.3:
//     a serial conditional negation costs one negator AND and one mux
//     AND per stage, and two such pairs sit at the multiplier input
//     and two at its output), and one accumulator AND.
//
// Performance model (§4.3, verified by this package's tests):
//
//	cores(b)   = b/2 + ⌈(b/2+8)/3⌉      (idle slots per stage ≤ 2)
//	latency    = b + log₂(b) + 2 stages
//	throughput = 1 MAC per b stages = 1 MAC per 3b clock cycles
package sched

import (
	"fmt"
	"math/bits"
)

// CyclesPerStage is the paper's stage size: three clock cycles, one
// garbled table per core per cycle.
const CyclesPerStage = 3

// OpKind classifies the garbling operation in one schedule slot.
type OpKind uint8

// Schedule slot operations. Every non-idle slot garbles exactly one
// AND table; the free XOR gates ride along with their slot.
const (
	// Idle marks a slot with no table to garble.
	Idle OpKind = iota
	// PartialProduct is a multiplier partial-product AND x[j]∧a[n].
	PartialProduct
	// SerialAdd is the AND of a segment-1 serial adder cell.
	SerialAdd
	// TreeAdd is the AND of a segment-2 tree-adder cell.
	TreeAdd
	// SignMux is a multiplexer AND of a signed-support mux/2's-
	// complement pair.
	SignMux
	// SignNeg is the serial 2's-complement negator AND of a pair.
	SignNeg
	// Accumulate is the accumulator serial-adder AND.
	Accumulate
)

// String renders the op mnemonic.
func (k OpKind) String() string {
	switch k {
	case Idle:
		return "IDLE"
	case PartialProduct:
		return "PP_AND"
	case SerialAdd:
		return "SER_ADD"
	case TreeAdd:
		return "TREE_ADD"
	case SignMux:
		return "SIGN_MUX"
	case SignNeg:
		return "SIGN_NEG"
	case Accumulate:
		return "ACCUM"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Segment identifies which pipeline segment a core belongs to.
type Segment uint8

// Pipeline segments.
const (
	// MuxAdd is segment 1 of Fig. 2/3.
	MuxAdd Segment = iota
	// Tree is segment 2 of Fig. 2.
	Tree
)

// String renders the segment name.
func (s Segment) String() string {
	if s == MuxAdd {
		return "MUX_ADD"
	}
	return "TREE"
}

// Slot is one (core, cycle) cell of the steady-state stage grid.
type Slot struct {
	// Kind is the operation garbled in this slot.
	Kind OpKind
	// Detail describes the operands, e.g. "x[3]∧a[n-1]".
	Detail string
}

// Core is one GC core with its three slots per stage.
type Core struct {
	// ID is the core index (the "core id m" fed to each core, §4.1).
	ID int
	// Segment is the pipeline segment the core serves.
	Segment Segment
	// Slots are the three per-stage cycle slots.
	Slots [CyclesPerStage]Slot
}

// Schedule is the steady-state FSM schedule of one MAC unit.
type Schedule struct {
	// Width is the operand bit-width b.
	Width int
	// Cores is the full core grid, segment 1 first.
	Cores []Core
}

// Build compiles the schedule for bit-width b. The paper's
// architecture requires b even (cores pair the bits of x) and ≥ 4,
// a power of two for the balanced adder tree.
func Build(b int) (*Schedule, error) {
	if b < 4 || b%2 != 0 {
		return nil, fmt.Errorf("sched: bit-width %d must be an even integer ≥ 4", b)
	}
	if b&(b-1) != 0 {
		return nil, fmt.Errorf("sched: bit-width %d must be a power of two for the balanced tree", b)
	}
	s := &Schedule{Width: b}

	// Segment 1: b/2 MUX_ADD cores, fully occupied (Fig. 3).
	for m := 0; m < b/2; m++ {
		s.Cores = append(s.Cores, Core{
			ID:      m,
			Segment: MuxAdd,
			Slots: [CyclesPerStage]Slot{
				{Kind: PartialProduct, Detail: fmt.Sprintf("x[%d]∧a[n]", 2*m)},
				{Kind: PartialProduct, Detail: fmt.Sprintf("x[%d]∧a[n-1]", 2*m+1)},
				{Kind: SerialAdd, Detail: fmt.Sprintf("s%d += pp (1 AND + 4 XOR)", m)},
			},
		})
	}

	// Segment 2: the per-stage op list — tree adders, signed support,
	// accumulator — packed three per core.
	var ops []Slot
	for t := 0; t < b/2-1; t++ {
		ops = append(ops, Slot{Kind: TreeAdd, Detail: fmt.Sprintf("tree adder %d", t)})
	}
	for p := 0; p < 4; p++ {
		where := "in"
		if p >= 2 {
			where = "out"
		}
		ops = append(ops,
			Slot{Kind: SignMux, Detail: fmt.Sprintf("sign mux pair %d (%s)", p, where)},
			Slot{Kind: SignNeg, Detail: fmt.Sprintf("sign negate pair %d (%s)", p, where)},
		)
	}
	ops = append(ops, Slot{Kind: Accumulate, Detail: "acc += product"})

	seg2Cores := (len(ops) + CyclesPerStage - 1) / CyclesPerStage
	for c := 0; c < seg2Cores; c++ {
		core := Core{ID: b/2 + c, Segment: Tree}
		for k := 0; k < CyclesPerStage; k++ {
			idx := c*CyclesPerStage + k
			if idx < len(ops) {
				core.Slots[k] = ops[idx]
			} else {
				core.Slots[k] = Slot{Kind: Idle, Detail: "idle"}
			}
		}
		s.Cores = append(s.Cores, core)
	}
	return s, nil
}

// MustBuild compiles the schedule and panics on configuration error.
func MustBuild(b int) *Schedule {
	s, err := Build(b)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCores returns the total GC core count — the paper's
// b/2 + ⌈(b/2+8)/3⌉.
func (s *Schedule) NumCores() int { return len(s.Cores) }

// SegmentCores returns the core count of one segment.
func (s *Schedule) SegmentCores(seg Segment) int {
	n := 0
	for _, c := range s.Cores {
		if c.Segment == seg {
			n++
		}
	}
	return n
}

// IdleSlotsPerStage counts idle (core, cycle) slots in the
// steady-state stage; the paper guarantees at most 2.
func (s *Schedule) IdleSlotsPerStage() int {
	n := 0
	for _, c := range s.Cores {
		for _, sl := range c.Slots {
			if sl.Kind == Idle {
				n++
			}
		}
	}
	return n
}

// TablesPerStage counts garbled tables produced per stage.
func (s *Schedule) TablesPerStage() int {
	return s.NumCores()*CyclesPerStage - s.IdleSlotsPerStage()
}

// TablesPerMAC counts garbled tables per complete MAC: the steady
// state runs for b stages per MAC.
func (s *Schedule) TablesPerMAC() int { return s.TablesPerStage() * s.Width }

// StagesPerMAC is the pipelined throughput period: one MAC completes
// every b stages.
func (s *Schedule) StagesPerMAC() int { return s.Width }

// CyclesPerMAC is the pipelined throughput period in clock cycles —
// Table 2's "Clock Cycle per MAC" row (24/48/96 for b = 8/16/32).
func (s *Schedule) CyclesPerMAC() int { return CyclesPerStage * s.Width }

// LatencyStages is the fill latency of the pipeline for one MAC:
// b + log₂(b) + 2 stages (§4.3).
func (s *Schedule) LatencyStages() int {
	return s.Width + bits.Len(uint(s.Width)-1) + 2
}

// LatencyCycles is LatencyStages in clock cycles.
func (s *Schedule) LatencyCycles() int { return CyclesPerStage * s.LatencyStages() }

// TotalCycles returns the clock cycles to garble n sequential MACs on
// one MAC unit, including pipeline fill: latency for the first result
// plus b stages for each additional one.
func (s *Schedule) TotalCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(s.LatencyCycles()) + uint64(n-1)*uint64(s.CyclesPerMAC())
}

// WorstCaseRNGBitsPerCycle is the label generator's §5.2 worst case:
// k·(b/2) fresh random bits per clock cycle (one fresh label per
// segment-1 core when a new x word loads).
func (s *Schedule) WorstCaseRNGBitsPerCycle(k int) int { return k * s.Width / 2 }

// ShapeCycles is the capacity-model cost hook: clock cycles to garble
// one rows×cols matvec request on a single MAC unit — rows independent
// MAC chains of cols MACs each, run back to back through the pipeline
// (one fill, then rows·cols−1 steady-state periods). Degenerate shapes
// (zero or negative rows or cols) cost nothing: an empty request
// garbles no tables.
func (s *Schedule) ShapeCycles(rows, cols int) uint64 {
	if rows <= 0 || cols <= 0 {
		return 0
	}
	return s.TotalCycles(rows * cols)
}

// ShapeTables is the garbled-table volume of one rows×cols matvec
// request — the byte-count driver of the PCIe drain model. Zero for
// degenerate shapes, matching ShapeCycles.
func (s *Schedule) ShapeTables(rows, cols int) uint64 {
	if rows <= 0 || cols <= 0 {
		return 0
	}
	return uint64(s.TablesPerMAC()) * uint64(rows) * uint64(cols)
}
