package sched

import (
	"fmt"
	"strings"
)

// Pipeline timeline: the stage-by-stage life of MACs flowing through
// one unit. The steady-state grid (Fig. 3) says what every core does
// within a stage; the timeline says which MAC each piece of work
// belongs to across stages — the fill/steady/drain picture behind the
// §4.3 latency and throughput formulas.

// Phase classifies what a pipeline region is doing in one stage.
type Phase uint8

// Pipeline phases.
const (
	// PhaseIdle: no MAC occupies the region.
	PhaseIdle Phase = iota
	// PhaseMultiply: segment 1 streams partial products.
	PhaseMultiply
	// PhaseTree: segment 2 combines partial-product streams.
	PhaseTree
	// PhaseSign: signed-support conditioning.
	PhaseSign
	// PhaseAccumulate: the accumulator absorbs the product stream.
	PhaseAccumulate
)

// String renders the phase mnemonic.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseMultiply:
		return "multiply"
	case PhaseTree:
		return "tree"
	case PhaseSign:
		return "sign"
	case PhaseAccumulate:
		return "accumulate"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// TimelineEntry describes one pipeline region during one stage.
type TimelineEntry struct {
	// Stage is the global stage index.
	Stage int
	// MAC is the index of the MAC occupying the region (-1 when idle).
	MAC int
	// Phase is what the region is doing for that MAC.
	Phase Phase
}

// Timeline is the per-stage occupancy of the pipeline regions for a
// run of several MACs.
type Timeline struct {
	// Width is the MAC bit-width.
	Width int
	// MACs is the number of MACs streamed.
	MACs int
	// Stages is the total stage count: latency + (MACs−1)·b.
	Stages int
	// Seg1, Seg2, Acc hold one entry per stage for the three pipeline
	// regions (segment 1, segment 2 tree+sign, accumulator).
	Seg1, Seg2, Acc []TimelineEntry
}

// BuildTimeline expands the schedule into the region timeline for n
// pipelined MACs: MAC k enters segment 1 at stage k·b, reaches the
// tree log₂(b) stages later and the accumulator after 2 more (§4.3:
// latency = b + log₂(b) + 2 stages).
func (s *Schedule) BuildTimeline(n int) (*Timeline, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: timeline needs a positive MAC count")
	}
	b := s.Width
	treeDelay := s.LatencyStages() - b - 2 // = log₂(b)
	total := s.LatencyStages() + (n-1)*b
	tl := &Timeline{
		Width: b, MACs: n, Stages: total,
		Seg1: make([]TimelineEntry, total),
		Seg2: make([]TimelineEntry, total),
		Acc:  make([]TimelineEntry, total),
	}
	for st := 0; st < total; st++ {
		tl.Seg1[st] = TimelineEntry{Stage: st, MAC: -1, Phase: PhaseIdle}
		tl.Seg2[st] = TimelineEntry{Stage: st, MAC: -1, Phase: PhaseIdle}
		tl.Acc[st] = TimelineEntry{Stage: st, MAC: -1, Phase: PhaseIdle}
	}
	for k := 0; k < n; k++ {
		enter := k * b
		for st := enter; st < enter+b && st < total; st++ {
			tl.Seg1[st] = TimelineEntry{Stage: st, MAC: k, Phase: PhaseMultiply}
		}
		treeStart := enter + treeDelay
		for st := treeStart; st < treeStart+b && st < total; st++ {
			// Tree and sign work share segment 2; the sign ops ride in
			// the same core group (§4.3 integrates them there).
			tl.Seg2[st] = TimelineEntry{Stage: st, MAC: k, Phase: PhaseTree}
		}
		accStart := enter + treeDelay + 2
		for st := accStart; st < accStart+b && st < total; st++ {
			tl.Acc[st] = TimelineEntry{Stage: st, MAC: k, Phase: PhaseAccumulate}
		}
	}
	return tl, nil
}

// OccupiedFraction reports the busy fraction of one region's entries.
func occupiedFraction(entries []TimelineEntry) float64 {
	if len(entries) == 0 {
		return 0
	}
	busy := 0
	for _, e := range entries {
		if e.MAC >= 0 {
			busy++
		}
	}
	return float64(busy) / float64(len(entries))
}

// SteadyStateOccupancy reports the busy fraction of each region over
// the whole run; with enough MACs all three approach 1.
func (t *Timeline) SteadyStateOccupancy() (seg1, seg2, acc float64) {
	return occupiedFraction(t.Seg1), occupiedFraction(t.Seg2), occupiedFraction(t.Acc)
}

// CompletionStage returns the stage at which MAC k's accumulator
// update finishes: k·b + latency − 1.
func (t *Timeline) CompletionStage(k int) (int, error) {
	if k < 0 || k >= t.MACs {
		return 0, fmt.Errorf("sched: MAC %d outside run of %d", k, t.MACs)
	}
	latency := t.Stages - (t.MACs-1)*t.Width
	return k*t.Width + latency - 1, nil
}

// Render draws the timeline as rows of MAC indices per region, one
// column per stage (capped for readability).
func (t *Timeline) Render(maxStages int) string {
	if maxStages <= 0 || maxStages > t.Stages {
		maxStages = t.Stages
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline timeline, b=%d, %d MACs (showing %d of %d stages)\n",
		t.Width, t.MACs, maxStages, t.Stages)
	row := func(name string, entries []TimelineEntry) {
		fmt.Fprintf(&sb, "%-8s", name)
		for i := 0; i < maxStages; i++ {
			if entries[i].MAC < 0 {
				sb.WriteString(" .")
			} else {
				fmt.Fprintf(&sb, " %d", entries[i].MAC%10)
			}
		}
		sb.WriteByte('\n')
	}
	row("MUX_ADD", t.Seg1)
	row("TREE", t.Seg2)
	row("ACC", t.Acc)
	return sb.String()
}
