package capmodel

import (
	"fmt"
	"math"

	"maxelerator/internal/load"
)

// ToleranceBand states how far a prediction may drift from a live
// measurement before validation fails. Latency checks pass when the
// predicted percentile is within LatencyFactor× of the measured one
// in either direction, OR within LatencySlackMs absolute — the slack
// keeps sub-millisecond percentiles from failing on scheduler noise.
type ToleranceBand struct {
	LatencyFactor  float64 `json:"latency_factor"`
	LatencySlackMs float64 `json:"latency_slack_ms"`
	// HitRateAbs bounds the absolute pool hit-rate difference.
	HitRateAbs float64 `json:"hit_rate_abs"`
}

// DefaultTolerance is the band the repo's own validation harness and
// the CI smoke job assert: predicted p50/p99 within 3× (or 25 ms) of
// measured, hit-rate within 0.35 absolute. Wide by design — the model
// predicts a noisy software stack on shared CI hardware; the claim is
// "right regime and right shape", not clock-level agreement. DESIGN.md
// §15 records the actually-measured error, which sits well inside this.
var DefaultTolerance = ToleranceBand{LatencyFactor: 3, LatencySlackMs: 25, HitRateAbs: 0.35}

// Validate compares a live measurement with a prediction of the same
// scenario and returns one violation string per breached bound; empty
// means the prediction held.
func Validate(measured *load.Report, predicted *Result, tol ToleranceBand) []string {
	var out []string
	if measured.Succeeded == 0 {
		return []string{"measured run had no successful sessions — nothing to validate against"}
	}
	if predicted.Succeeded == 0 {
		return []string{"prediction had no successful sessions"}
	}
	check := func(name string, m, p float64) {
		if within(m, p, tol) {
			return
		}
		out = append(out, fmt.Sprintf(
			"%s: predicted %.2f ms vs measured %.2f ms (beyond %gx / %g ms slack)",
			name, p, m, tol.LatencyFactor, tol.LatencySlackMs))
	}
	check("p50", measured.Latency.P50Ms, predicted.Latency.P50Ms)
	check("p99", measured.Latency.P99Ms, predicted.Latency.P99Ms)
	if measured.Pool != nil && predicted.Pool != nil {
		if d := math.Abs(measured.Pool.HitRate - predicted.Pool.HitRate); d > tol.HitRateAbs {
			out = append(out, fmt.Sprintf(
				"pool hit-rate: predicted %.2f vs measured %.2f (|Δ|=%.2f beyond %.2f)",
				predicted.Pool.HitRate, measured.Pool.HitRate, d, tol.HitRateAbs))
		}
	}
	return out
}

// within applies the factor-or-slack latency rule.
func within(m, p float64, tol ToleranceBand) bool {
	if math.Abs(m-p) <= tol.LatencySlackMs {
		return true
	}
	if m <= 0 || p <= 0 {
		return false
	}
	ratio := p / m
	if ratio < 1 {
		ratio = 1 / ratio
	}
	return ratio <= tol.LatencyFactor
}

// Error summarizes prediction error for reporting: the worst latency
// ratio across p50/p99 and the absolute hit-rate delta.
func Error(measured *load.Report, predicted *Result) map[string]float64 {
	out := map[string]float64{}
	ratio := func(m, p float64) float64 {
		if m <= 0 || p <= 0 {
			return 0
		}
		r := p / m
		if r < 1 {
			r = 1 / r
		}
		return r
	}
	out["p50_ratio"] = ratio(measured.Latency.P50Ms, predicted.Latency.P50Ms)
	out["p99_ratio"] = ratio(measured.Latency.P99Ms, predicted.Latency.P99Ms)
	if measured.Pool != nil && predicted.Pool != nil {
		out["hit_rate_abs_delta"] = math.Abs(measured.Pool.HitRate - predicted.Pool.HitRate)
	}
	return out
}
